"""Serve throughput scaling with process replicas over the shared plan arena.

Thread workers (``--workers N``) stop scaling at roughly one core of Python:
the GEMMs release the GIL, the op-dispatch loop does not.  Process replicas
(``--replicas N``) remove the GIL while the :class:`repro.runtime.PlanArena`
keeps the memory story flat — one shared-memory segment holds the plan
constants (weights, running stats, folded conv+norm GEMM arrays) for every
replica, so the constants' resident cost is O(1) in the replica count rather
than O(N).

Method — the canonical-trace workload (docs/OBSERVABILITY.md):

1. one live single-worker serve run records its traffic to a WAL trace
   (:class:`repro.serve.TraceRecorder`) — clips, arrival order, threshold,
   and every recorded decision;
2. every composition (1 worker baseline, N thread workers, N process
   replicas over the ring transport, N process replicas over the legacy
   pipe-pickle transport) then replays *that same trace* through
   :class:`repro.serve.TraceReplayer` (median of ``ROUNDS`` replays), so all
   rows measure the identical workload through the identical submission
   machinery — apples to apples by construction;
3. decision-exactness is asserted per replay: every composition must
   reproduce the recorded predictions and exit timesteps bitwise
   (``ReplayReport.exact``), which is the trace-replay regression gate
   doing double duty as the correctness check;
4. the headline single-core ratio lands in ``BENCH_serve_replicas.json``
   as structured data (machine, cores, req/s per composition, arena bytes,
   replica PSS) instead of prose.  Schema v2 adds a ``dispatch_cost``
   block: per-request service time of the ring vs pipe replica rows and
   their delta — the end-to-end cost the shared-memory frames remove from
   every dispatched request (``bench_ipc_ring.py`` isolates the same
   difference without model noise).

Scaling assertion: with >= 4 usable cores and full (non-smoke) scale, N=4
replicas must reach >= 2x the single-worker baseline throughput.  On fewer
cores there is no parallel hardware for replicas to use — the run reports
the measured ratio and notes why the gate is skipped (this keeps the bench
honest on 1- and 2-core CI boxes; the 2x criterion is a multi-core claim).
"""

import os
import statistics

from _bench_utils import SMOKE, emit, emit_bench_json, print_section
from repro.core import EntropyExitPolicy
from repro.imc import format_table
from repro.serve import (
    Server,
    TraceRecorder,
    TraceReplayer,
    load_trace,
    request_stream,
)

REPLICAS = 4
ROUNDS = 3
NUM_REQUESTS = 120 if SMOKE else 240
BATCH_WIDTH = 8
STREAM_SEED = 29


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _replica_pss_kb(server) -> float:
    """Total proportional-set-size of the replica processes (Linux)."""
    total = 0.0
    for process in server.replicas.processes:
        try:
            with open(f"/proc/{process.pid}/smaps_rollup", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("Pss:"):
                        total += float(line.split()[1])
                        break
        except OSError:  # pragma: no cover - process already gone
            pass
    return total


def _build_server(experiment, threshold, *, num_workers=1, num_replicas=0,
                  trace=None, replica_transport="ring"):
    return Server(
        experiment.model,
        EntropyExitPolicy(threshold),
        max_timesteps=experiment.timesteps,
        batch_width=BATCH_WIDTH,
        queue_capacity=max(64, NUM_REQUESTS),
        num_workers=num_workers,
        num_replicas=num_replicas,
        trace=trace,
        replica_transport=replica_transport,
    )


def _record_canonical_trace(experiment, threshold, stream, path):
    """One live single-worker serve run, recorded to the WAL at ``path``."""
    recorder = TraceRecorder(path, meta={
        "bench": "serve_replicas",
        "threshold": float(threshold),
        "max_timesteps": experiment.timesteps,
        "batch_width": BATCH_WIDTH,
    })
    server = _build_server(experiment, threshold, num_workers=1, trace=recorder)
    server.start()
    try:
        futures = [server.submit(inputs, label=label) for inputs, label in stream]
        for future in futures:
            future.result(timeout=300.0)
    finally:
        server.shutdown(drain=True)
        recorder.close()
    return load_trace(path)


def _replay_once(experiment, threshold, trace, *, num_workers=1, num_replicas=0,
                 replica_transport="ring"):
    server = _build_server(
        experiment, threshold, num_workers=num_workers, num_replicas=num_replicas,
        replica_transport=replica_transport,
    ).start()
    pss_kb = None
    try:
        if num_replicas:
            pss_kb = _replica_pss_kb(server)
        replayer = TraceReplayer(trace, verify=True)
        report = replayer.replay(server)
        replayer.assert_exact(report)
    finally:
        server.shutdown(drain=True)
    arena_bytes = (
        server.replicas.arena.spec.size if server.replicas is not None else None
    )
    return report.throughput_rps, arena_bytes, pss_kb


def _median_rps(experiment, threshold, trace, **kwargs):
    runs = [
        _replay_once(experiment, threshold, trace, **kwargs) for _ in range(ROUNDS)
    ]
    rps = statistics.median(run[0] for run in runs)
    return rps, runs[0][1], runs[0][2]


def test_replica_scaling(benchmark, suite, tmp_path):
    # Width-doubled model: per-request compute must outweigh the ~0.1 ms
    # per-request IPC cost for process scaling to mean anything — the
    # shared tiny model serves at ~0.12 ms/request in-process, a regime
    # where no dispatch mechanism beats staying in-process.
    experiment = suite.get("vgg", "cifar10", width_multiplier=2.0)
    experiment.model.eval()
    point = experiment.calibrated_point(tolerance=0.0)
    stream = list(
        request_stream(experiment.test_dataset, NUM_REQUESTS, seed=STREAM_SEED)
    )
    trace_path = str(tmp_path / "canonical_trace.jsonl")
    trace = _record_canonical_trace(experiment, point.threshold, stream, trace_path)
    assert len(trace.records) == NUM_REQUESTS and not trace.truncated

    def run():
        baseline = _median_rps(experiment, point.threshold, trace, num_workers=1)
        threads = _median_rps(
            experiment, point.threshold, trace, num_workers=REPLICAS
        )
        replicas = _median_rps(
            experiment, point.threshold, trace, num_replicas=REPLICAS
        )
        pipe_replicas = _median_rps(
            experiment, point.threshold, trace, num_replicas=REPLICAS,
            replica_transport="pipe",
        )
        return baseline, threads, replicas, pipe_replicas

    baseline, threads, replicas, pipe_replicas = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    base_rps, _, _ = baseline
    thread_rps, _, _ = threads
    replica_rps, arena_bytes, pss_kb = replicas
    pipe_rps, _, _ = pipe_replicas
    # Per-request service time is 1/throughput on an identical replayed
    # workload, so the ring-vs-pipe time delta is the dispatch cost the
    # ring transport removes from every request.
    dispatch_delta_us = 1e6 / pipe_rps - 1e6 / replica_rps

    cores = _cores()
    print_section(
        f"Serve scaling: 1 worker vs {REPLICAS} threads vs {REPLICAS} process "
        f"replicas ({cores} core(s), canonical trace of {NUM_REQUESTS} requests, "
        f"median of {ROUNDS} replays)"
    )
    emit(format_table(
        ["configuration", "req/s", "vs baseline"],
        [
            ["1 thread worker (baseline)", base_rps, 1.0],
            [f"{REPLICAS} thread workers (GIL-bound)", thread_rps,
             thread_rps / base_rps],
            [f"{REPLICAS} process replicas (ring transport)", replica_rps,
             replica_rps / base_rps],
            [f"{REPLICAS} process replicas (pipe transport)", pipe_rps,
             pipe_rps / base_rps],
        ],
        float_format="{:.2f}",
    ))
    emit(f"\ndispatch cost: ring transport spends "
         f"{1e6 / replica_rps:.1f} us/request vs {1e6 / pipe_rps:.1f} us/request "
         f"over pipe-pickle on the same trace (delta {dispatch_delta_us:+.1f} "
         "us/request, positive = ring cheaper; the ring's edge grows with the "
         "frame size — bench_ipc_ring.py isolates the transport without model "
         "noise)")
    emit(f"\nplan arena: one shared segment of {arena_bytes} bytes serves all "
         f"{REPLICAS} replicas ({arena_bytes // REPLICAS} bytes/replica amortized; "
         "constants are exported once, attached zero-copy, so the arena cost is "
         "O(1) in the replica count)")
    if pss_kb:
        emit(f"replica private memory: {pss_kb:.0f} kB PSS total across "
             f"{REPLICAS} processes at start of serving (interpreter + executor "
             "state; the weights live in the shared segment above)")
    emit("\nall compositions replayed the canonical trace decision-exact "
         f"({NUM_REQUESTS}/{NUM_REQUESTS} requests bitwise vs the recording)")

    emit_bench_json("serve_replicas", {
        # v2: adds the pipe-transport replica composition and the
        # dispatch_cost block (per-request ring-vs-pipe delta); v1 had only
        # the three ring-era compositions.
        "schema_version": 2,
        "workload": {
            "kind": "trace_replay",
            "num_requests": NUM_REQUESTS,
            "batch_width": BATCH_WIDTH,
            "threshold": float(point.threshold),
            "rounds": ROUNDS,
        },
        "cores": cores,
        "compositions": {
            "baseline_1_worker": {"throughput_rps": base_rps, "ratio": 1.0},
            f"{REPLICAS}_thread_workers": {
                "throughput_rps": thread_rps, "ratio": thread_rps / base_rps,
            },
            f"{REPLICAS}_process_replicas": {
                "throughput_rps": replica_rps, "ratio": replica_rps / base_rps,
                "arena_bytes": arena_bytes,
                "replica_pss_kb": pss_kb,
            },
            f"{REPLICAS}_process_replicas_pipe_transport": {
                "throughput_rps": pipe_rps, "ratio": pipe_rps / base_rps,
            },
        },
        "dispatch_cost": {
            "ring_us_per_request": 1e6 / replica_rps,
            "pipe_us_per_request": 1e6 / pipe_rps,
            "delta_us_per_request": dispatch_delta_us,
        },
        "single_core_ratio": replica_rps / base_rps if cores < 4 else None,
        "multicore_ratio": replica_rps / base_rps if cores >= 4 else None,
        "decision_exact": True,
    })

    if SMOKE:
        emit("smoke mode: throughput gate skipped")
        return
    if cores < 4:
        emit(f"only {cores} core(s) visible: the >=2x replica gate needs >=4 "
             f"cores of real parallelism; measured ratio {replica_rps / base_rps:.2f}x "
             "recorded in BENCH_serve_replicas.json")
        return
    assert replica_rps >= 2.0 * base_rps, (
        f"{REPLICAS} replicas reached only {replica_rps / base_rps:.2f}x the "
        "single-worker baseline"
    )
