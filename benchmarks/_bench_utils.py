"""Shared infrastructure for the benchmark harness (see conftest.py for fixtures).

Every benchmark regenerates one table or figure of the paper.  The expensive
part — training spiking networks on the synthetic datasets — is done once per
session by the :class:`ExperimentSuite` and cached, so individual benchmarks
only pay for the analysis they measure.

Scale note: the models are width-reduced versions of the paper's VGG/ResNet
(see DESIGN.md §2) trained on synthetic datasets, so absolute accuracies and
energies differ from the paper; every benchmark prints the paper's reference
numbers next to the regenerated ones so the *shape* comparison is explicit.
"""

from __future__ import annotations

import os
import sys
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import calibrate_threshold, sweep_thresholds  # noqa: E402
from repro.data import (  # noqa: E402
    ArrayDataset,
    DataLoader,
    SyntheticDVSConfig,
    SyntheticImageConfig,
    make_dvs_like,
    make_synthetic_images,
    train_test_split,
)
from repro.imc import IMCChip  # noqa: E402
from repro.snn import EventFrameEncoder, spiking_resnet, spiking_vgg  # noqa: E402
from repro.training import (  # noqa: E402
    Trainer,
    TrainingConfig,
    collect_cumulative_logits,
    evaluate_per_timestep_accuracy,
)
from repro.utils import seed_everything  # noqa: E402

# --------------------------------------------------------------------------- #
# Benchmark-scale experiment configuration
#
# The class counts / sample counts are chosen so every (architecture, dataset)
# pair trains to well above chance within a few seconds on CPU while keeping
# the paper's difficulty ordering cifar10 < cifar100 < tinyimagenet.  The
# dataset names refer to the role each synthetic dataset plays in the paper's
# evaluation, not to the real datasets (see DESIGN.md §2).
# --------------------------------------------------------------------------- #
IMAGE_SIZE = 10

# Smoke mode (REPRO_BENCH_SMOKE=1): the CI guard that keeps the bench suite
# from rotting.  Every bench file runs end to end — same code paths, same
# assertions — on smaller datasets, trading statistical fidelity of the
# regenerated tables for wall-clock.  Epoch counts stay at full strength
# because several benches assert properties of *converged* models (early
# exits actually firing, accuracy orderings); shrinking only the sample
# count keeps those properties while cutting training cost.  Absolute
# numbers in smoke reports are NOT comparable to full runs.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in ("1", "true", "on", "yes")


def _smoke_samples(full: int) -> int:
    return int(full * 0.75) if SMOKE else full


EPOCHS = 8
MAX_TIMESTEPS = 4
DVS_TIMESTEPS = 6
LEARNING_RATES = {"vgg": 0.15, "resnet": 0.1}
RESNET_WIDTH_MULTIPLIER = 1.5
# The event-stream dataset carries less information per frame, so both
# architectures need a few more epochs to converge on it.
EPOCH_OVERRIDES = {"cifar10dvs": 12}

DATASET_BUILDERS = {
    "cifar10": lambda: make_synthetic_images(
        SyntheticImageConfig(
            num_classes=10, num_samples=_smoke_samples(420), image_size=IMAGE_SIZE,
            easy_fraction=0.65, seed=7, name="cifar10-like",
        )
    ),
    "cifar100": lambda: make_synthetic_images(
        SyntheticImageConfig(
            num_classes=14, num_samples=_smoke_samples(480), image_size=IMAGE_SIZE,
            easy_fraction=0.45, easy_contrast=(0.6, 0.85), hard_contrast=(0.18, 0.45),
            hard_noise=0.42, clutter_strength=0.32, seed=8, name="cifar100-like",
        )
    ),
    "tinyimagenet": lambda: make_synthetic_images(
        SyntheticImageConfig(
            num_classes=16, num_samples=_smoke_samples(480), image_size=IMAGE_SIZE,
            easy_fraction=0.35, easy_contrast=(0.5, 0.75), hard_contrast=(0.12, 0.38),
            hard_noise=0.5, clutter_strength=0.45, seed=9, name="tinyimagenet-like",
        )
    ),
    "cifar10dvs": lambda: make_dvs_like(
        SyntheticDVSConfig(
            num_classes=8,
            num_samples=_smoke_samples(300),
            num_frames=DVS_TIMESTEPS,
            image_size=IMAGE_SIZE,
            seed=10,
        )
    ),
}


@dataclass
class Experiment:
    """A trained model plus everything the benchmarks derive from it."""

    architecture: str
    dataset_name: str
    loss_name: str
    model: object
    train_dataset: ArrayDataset
    test_dataset: ArrayDataset
    timesteps: int
    cumulative_logits: np.ndarray
    labels: np.ndarray
    per_timestep_accuracy: List[float]

    _chip: Optional[IMCChip] = field(default=None, repr=False)

    @property
    def static_accuracy(self) -> float:
        return self.per_timestep_accuracy[-1]

    @property
    def num_classes(self) -> int:
        return self.test_dataset.num_classes

    def chip(self) -> IMCChip:
        """The calibrated IMC chip for this model (built lazily, cached)."""
        if self._chip is None:
            sample = self.test_dataset.inputs[:4]
            self._chip = IMCChip.from_network(
                self.model, sample, num_classes=self.num_classes, trace_timesteps=2
            )
        return self._chip

    def calibrated_point(self, tolerance: float = 0.005):
        """The Table II operating point: match static accuracy within tolerance."""
        return calibrate_threshold(
            self.cumulative_logits, self.labels, tolerance=tolerance
        )

    def threshold_sweep(self, thresholds):
        return sweep_thresholds(self.cumulative_logits, self.labels, thresholds)

    def test_loader(self, batch_size: int = 64) -> DataLoader:
        return DataLoader(self.test_dataset, batch_size=batch_size, shuffle=False)


class ExperimentSuite:
    """Trains and caches (architecture, dataset, loss) experiments on demand."""

    def __init__(self):
        self._cache: Dict[Tuple[str, str, str], Experiment] = {}
        self._datasets: Dict[str, Tuple[ArrayDataset, ArrayDataset]] = {}

    # ------------------------------------------------------------------ #
    def datasets(self, name: str) -> Tuple[ArrayDataset, ArrayDataset]:
        if name not in self._datasets:
            if name not in DATASET_BUILDERS:
                raise KeyError(f"unknown benchmark dataset {name!r}")
            seed_everything(100)
            dataset = DATASET_BUILDERS[name]()
            self._datasets[name] = train_test_split(dataset, test_fraction=0.28, seed=5)
        return self._datasets[name]

    def _build_model(self, architecture: str, dataset_name: str, timesteps: int, **kwargs):
        train, _ = self.datasets(dataset_name)
        is_dvs = dataset_name == "cifar10dvs"
        in_channels = train.sample_shape[-3] if not is_dvs else train.sample_shape[-3]
        common = dict(
            num_classes=train.num_classes,
            in_channels=in_channels,
            input_size=train.sample_shape[-1],
            default_timesteps=timesteps,
            encoder=EventFrameEncoder() if is_dvs else None,
        )
        common.update(kwargs)
        if architecture == "vgg":
            return spiking_vgg("tiny", **common)
        if architecture == "resnet":
            common.setdefault("width_multiplier", RESNET_WIDTH_MULTIPLIER)
            return spiking_resnet("tiny", **common)
        raise KeyError(f"unknown architecture {architecture!r}")

    def get(
        self,
        architecture: str = "vgg",
        dataset_name: str = "cifar10",
        loss_name: str = "per_timestep",
        seed: int = 1000,
        epochs: int = EPOCHS,
        **model_kwargs,
    ) -> Experiment:
        """Train (or fetch from cache) one experiment."""
        key = (architecture, dataset_name, loss_name, repr(sorted(model_kwargs.items())))
        if key in self._cache:
            return self._cache[key]

        train, test = self.datasets(dataset_name)
        timesteps = DVS_TIMESTEPS if dataset_name == "cifar10dvs" else MAX_TIMESTEPS
        if epochs == EPOCHS:
            epochs = EPOCH_OVERRIDES.get(dataset_name, epochs)
        # Stable per-experiment seed (Python's hash() is salted per process).
        seed_everything(seed + zlib.crc32(repr(key).encode()) % 1000)
        model = self._build_model(architecture, dataset_name, timesteps, **model_kwargs)
        trainer = Trainer(
            model,
            TrainingConfig(
                epochs=epochs,
                timesteps=timesteps,
                learning_rate=LEARNING_RATES.get(architecture, 0.15),
                loss=loss_name,
            ),
        )
        train_loader = DataLoader(train, batch_size=36, seed=3)
        test_loader = DataLoader(test, batch_size=64, shuffle=False)
        trainer.fit(train_loader)

        collected = collect_cumulative_logits(model, test_loader, timesteps=timesteps)
        per_t = evaluate_per_timestep_accuracy(model, test_loader, timesteps=timesteps)
        experiment = Experiment(
            architecture=architecture,
            dataset_name=dataset_name,
            loss_name=loss_name,
            model=model,
            train_dataset=train,
            test_dataset=test,
            timesteps=timesteps,
            cumulative_logits=collected["logits"],
            labels=collected["labels"],
            per_timestep_accuracy=per_t,
        )
        self._cache[key] = experiment
        return experiment


# Smoke runs land in a separate file so they never clobber the real report.
_REPORT_PATH = Path(__file__).resolve().parent.parent / (
    "bench_report_smoke.txt" if SMOKE else "bench_report.txt"
)
_report_initialized = False


def emit(text: str = "") -> None:
    """Write report text to stdout and append it to ``bench_report.txt``.

    Run the harness with ``pytest benchmarks/ --benchmark-only -s`` (or pipe
    through ``tee``) to see the regenerated tables inline; without ``-s``
    pytest captures the stdout of passing tests, so the full report is always
    also written to ``bench_report.txt`` at the repository root.
    """
    global _report_initialized
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    mode = "a" if _report_initialized else "w"
    with open(_REPORT_PATH, mode, encoding="utf-8") as handle:
        handle.write(text + "\n")
    _report_initialized = True


def print_section(title: str) -> None:
    """Uniform section header so bench_output.txt reads like a report."""
    emit()
    emit("=" * 78)
    emit(title)
    emit("=" * 78)


# --------------------------------------------------------------------------- #
# Machine-readable bench artifacts (BENCH_<name>.json)
# --------------------------------------------------------------------------- #
def machine_info() -> Dict[str, object]:
    """The fields that make perf numbers comparable across runs/machines."""
    import platform

    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cpus_available": available,
    }


def emit_bench_json(name: str, payload: Dict[str, object]) -> Path:
    """Write ``BENCH_<name>.json`` at the repository root.

    The machine-readable twin of the prose report: every ``bench_serve_*``
    script calls this with its headline numbers (req/s, percentiles,
    composition) so the perf trajectory across PRs is diffable data, not
    paragraphs.  The schema is documented in docs/OBSERVABILITY.md; ``smoke``
    marks runs whose absolute numbers are not comparable to full runs.
    CI uploads these as build artifacts.
    """
    import json
    import time as _time

    path = Path(__file__).resolve().parent.parent / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "schema_version": 1,
        "smoke": SMOKE,
        "unix_time": _time.time(),
        "machine": machine_info(),
    }
    document.update(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"[bench-json] wrote {path.name}")
    return path
