"""Dtype hygiene: no float64 array anywhere in the stack's dataflow.

The policy (docs/NUMERICS.md) is weak-scalar float32: scalars adopt the
dtype of the array they combine with, so nothing downstream of a norm layer,
a LIF update or the cumulative ``1/t`` averaging may promote to float64.
These tests sweep every tensor a forward/backward pass produces (by walking
the recorded autograd graph), every parameter, buffer and membrane, and
every scratch buffer / register / stem row inside a compiled-plan executor —
and assert float32 throughout.

The ``REPRO_FLOAT64=1`` escape hatch must keep working too: under it the
seed's float64 promotion reappears (asserted below, so the flag cannot rot
into a no-op) and the runtime kernels still mirror the Tensor path bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, float64_enabled, no_grad
from repro.core import DynamicTimestepInference, EntropyExitPolicy
from repro.runtime import executor_for, run_cumulative_logits
from repro.serve import InferenceEngine, Request, Response
from repro.snn import SpikingNetwork, spiking_resnet, spiking_vgg
from repro.snn.neurons import LIFNeuron
from repro.training import build_loss
from repro.utils import seed_everything

IMAGE_SIZE = 8
TIMESTEPS = 3

# The float32 assertions describe the *default* policy; when the whole suite
# runs under the escape hatch (the CI REPRO_FLOAT64 job) they do not apply.
requires_default_policy = pytest.mark.skipif(
    float64_enabled(), reason="suite is running under REPRO_FLOAT64=1"
)


def _build(kind: str) -> SpikingNetwork:
    seed_everything(17)
    if kind == "vgg-bn":
        return spiking_vgg("tiny", num_classes=5, input_size=IMAGE_SIZE,
                           default_timesteps=TIMESTEPS)
    if kind == "resnet-tdbn":
        return spiking_resnet("tiny", num_classes=5, input_size=IMAGE_SIZE,
                              default_timesteps=TIMESTEPS, norm="tdbn")
    raise KeyError(kind)


def _inputs(batch: int = 4) -> np.ndarray:
    rng = np.random.default_rng(3)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _walk_graph(roots) -> list:
    """Every Tensor reachable through the autograd graph from ``roots``."""
    seen: dict = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        stack.extend(node._parents)
    return list(seen.values())


def _assert_float32(label: str, array: np.ndarray) -> None:
    assert array.dtype == np.float32, f"{label} is {array.dtype}, expected float32"


def _assert_model_state_float32(model: SpikingNetwork) -> None:
    for name, param in model.named_parameters():
        _assert_float32(f"parameter {name}", param.data)
        if param.grad is not None:
            _assert_float32(f"grad of {name}", param.grad)
    for name, buffer in model.named_buffers():
        _assert_float32(f"buffer {name}", buffer)
    for layer in model.lif_layers():
        if layer.membrane is not None:
            _assert_float32("LIF membrane", layer.membrane.data)


@requires_default_policy
@pytest.mark.parametrize("kind", ["vgg-bn", "resnet-tdbn"])
def test_training_forward_backward_is_float32(kind):
    """Every op output and every gradient of a train-mode pass is float32."""
    model = _build(kind)
    model.train(True)
    x = _inputs()
    labels = np.array([0, 1, 2, 3], dtype=np.int64)
    output = model.forward(x, TIMESTEPS)
    loss = build_loss("per_timestep")(output, labels)
    loss.backward()

    for tensor in _walk_graph([loss, *output.per_timestep]):
        _assert_float32("graph tensor", tensor.data)
        if tensor.grad is not None:
            _assert_float32("graph tensor grad", tensor.grad)
    _assert_model_state_float32(model)


@requires_default_policy
@pytest.mark.parametrize("kind", ["vgg-bn", "resnet-tdbn"])
def test_eval_forward_is_float32_on_both_paths(kind):
    """Frozen inference (folded conv+norm) stays float32, Tensor and plan."""
    model = _build(kind).eval()
    x = _inputs()
    with no_grad():
        output = model.forward(x, TIMESTEPS)
        for tensor in _walk_graph(output.per_timestep):
            _assert_float32("eval graph tensor", tensor.data)
        _assert_float32("cumulative logits", output.cumulative_numpy())
    _assert_model_state_float32(model)

    executor = executor_for(model, use_runtime=True)
    assert executor is not None
    logits = run_cumulative_logits(model, executor, x, TIMESTEPS)
    _assert_float32("fast-path cumulative logits", logits)


@requires_default_policy
def test_executor_internals_are_float32():
    """Scratch buffers, registers, membranes and stem rows stay float32."""
    model = _build("vgg-bn").eval()
    executor = executor_for(model, use_runtime=True)
    run_cumulative_logits(model, executor, _inputs(), TIMESTEPS)

    for membrane in executor._membranes:
        if membrane is not None:
            _assert_float32("executor membrane", membrane)
    for register in executor._registers:
        if register is not None:
            _assert_float32("executor register", register)
    for op_scratch in executor._scratch:
        for key, buffer in op_scratch.items():
            if buffer.dtype == np.bool_:  # fire/relu masks are boolean
                continue
            _assert_float32(f"scratch buffer {key!r}", buffer)
    if executor._stem is not None:
        for register, value in executor._stem.items():
            _assert_float32(f"stem register r{register}", value)


@requires_default_policy
def test_serve_engine_running_state_is_float32():
    model = _build("vgg-bn").eval()
    engine = InferenceEngine(model, EntropyExitPolicy(0.2), max_timesteps=TIMESTEPS)
    x = _inputs(3)
    for index in range(3):
        engine.admit(Request(request_id=index, inputs=x[index]), Response(), start_time=0.0)
    while not engine.idle:
        engine.step()
        if engine._running_sum is not None:
            _assert_float32("engine running sum", engine._running_sum)


@requires_default_policy
def test_sequential_inference_is_float32():
    model = _build("vgg-bn").eval()
    engine = DynamicTimestepInference(model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS)
    result = engine.infer(_inputs())
    assert result.predictions.dtype == np.int64
    # The decision-side score vector is deliberately float64 (it is not part
    # of the network dataflow; see docs/NUMERICS.md).
    assert result.exit_timesteps.dtype == np.int64


# --------------------------------------------------------------------------- #
# The REPRO_FLOAT64 escape hatch
# --------------------------------------------------------------------------- #
def test_escape_hatch_restores_float64_promotion(monkeypatch):
    """Under REPRO_FLOAT64=1 the legacy leak reappears: eval logits promote
    to float64 downstream of the first norm layer."""
    monkeypatch.setenv("REPRO_FLOAT64", "1")
    assert float64_enabled()
    model = _build("vgg-bn").eval()
    with no_grad():
        output = model.forward(_inputs(), TIMESTEPS)
    assert output.per_timestep[0].data.dtype == np.float64
    # Scalars wrap as float64 0-d arrays again, and float64 data passes
    # through construction untouched.
    assert Tensor(0.5).dtype == np.float64
    assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64


def test_escape_hatch_keeps_paths_bitwise_equivalent(monkeypatch):
    """Legacy mode also upholds the path-vs-path bitwise contract (the
    kernels mirror the float64 promotion they were born with)."""
    monkeypatch.setenv("REPRO_FLOAT64", "1")
    model = _build("vgg-bn").eval()
    x = _inputs()
    with no_grad():
        reference = model.forward(x, TIMESTEPS).cumulative_numpy()
    assert reference.dtype == np.float64
    executor = executor_for(model, use_runtime=True)
    fast = run_cumulative_logits(model, executor, x, TIMESTEPS)
    assert fast.dtype == reference.dtype
    assert np.array_equal(reference, fast)


@requires_default_policy
def test_float64_checkpoint_buffers_are_coerced_and_paths_agree():
    """A checkpoint whose buffers arrive as float64 must not smuggle float64
    into the dataflow: register/update_buffer coerce to the policy dtype, so
    the folded conv+norm cache (fed by running stats) stays float32 and the
    fast path stays bitwise-equal to the oracle."""
    model = _build("vgg-bn").eval()
    state = {
        key: value.astype(np.float64) for key, value in model.state_dict().items()
    }
    model.load_state_dict(state)
    for name, buffer in model.named_buffers():
        _assert_float32(f"loaded buffer {name}", buffer)
    for name, param in model.named_parameters():
        _assert_float32(f"loaded parameter {name}", param.data)

    x = _inputs()
    with no_grad():
        reference = model.forward(x, TIMESTEPS).cumulative_numpy()
    _assert_float32("post-load cumulative logits", reference)
    fast = run_cumulative_logits(model, executor_for(model, use_runtime=True), x, TIMESTEPS)
    assert np.array_equal(reference, fast)


@requires_default_policy
def test_lif_membrane_stays_float32_across_timesteps():
    """The membrane trajectory itself (the paper's Eq. 2 state) is float32."""
    layer = LIFNeuron(tau=0.5, v_threshold=1.0)
    current = Tensor(np.full((2, 3), 0.6, dtype=np.float32))
    for _ in range(4):
        spikes = layer(current)
        assert spikes.dtype == np.float32
        assert layer.membrane.dtype == np.float32
