"""Tests for the command-line interface (train / evaluate / sweep / chip-report)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.utils import load_json, load_state_dict


@pytest.fixture(scope="module")
def trained_checkpoint(tmp_path_factory):
    """Train a tiny model through the CLI once and reuse the checkpoint."""
    directory = tmp_path_factory.mktemp("cli")
    checkpoint = directory / "model.npz"
    report = directory / "report.json"
    code = main([
        "train",
        "--dataset", "cifar10",
        "--arch", "vgg",
        "--epochs", "2",
        "--samples", "160",
        "--image-size", "8",
        "--timesteps", "2",
        "--checkpoint", str(checkpoint),
        "--report", str(report),
        "--seed", "3",
    ])
    assert code == 0
    return checkpoint, report


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_defaults(self):
        args = build_parser().parse_args(["train", "--checkpoint", "x.npz"])
        assert args.dataset == "cifar10"
        assert args.arch == "vgg"
        assert args.loss == "per_timestep"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--checkpoint", "x.npz", "--dataset", "imagenet"])


class TestTrainCommand:
    def test_checkpoint_written_and_loadable(self, trained_checkpoint):
        checkpoint, _ = trained_checkpoint
        state = load_state_dict(checkpoint)
        assert any(key.endswith("weight") for key in state)

    def test_report_written(self, trained_checkpoint):
        _, report = trained_checkpoint
        payload = load_json(report)
        assert payload["epochs"] == 2
        assert len(payload["eval_accuracy"]) == 2
        assert 0.0 <= payload["final_eval_accuracy"] <= 1.0


class TestAnalysisCommands:
    COMMON = [
        "--dataset", "cifar10",
        "--arch", "vgg",
        "--samples", "160",
        "--image-size", "8",
        "--timesteps", "2",
        "--seed", "3",
    ]

    def test_evaluate_prints_static_and_dynamic(self, trained_checkpoint, capsys):
        checkpoint, _ = trained_checkpoint
        code = main(["evaluate", "--checkpoint", str(checkpoint), *self.COMMON])
        assert code == 0
        output = capsys.readouterr().out
        assert "Static SNN accuracy" in output
        assert "DT-SNN" in output
        assert "exits at T=1" in output

    def test_sweep_without_edp(self, trained_checkpoint, capsys):
        checkpoint, _ = trained_checkpoint
        code = main([
            "sweep", "--checkpoint", str(checkpoint), *self.COMMON,
            "--thresholds", "0.1", "0.5",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Entropy-threshold sweep" in output
        assert output.count("\n") >= 4

    def test_sweep_with_edp_adds_columns(self, trained_checkpoint, capsys):
        checkpoint, _ = trained_checkpoint
        code = main([
            "sweep", "--checkpoint", str(checkpoint), *self.COMMON,
            "--thresholds", "0.2", "--with-edp",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "EDP (x static)" in output

    def test_chip_report(self, trained_checkpoint, capsys):
        checkpoint, _ = trained_checkpoint
        code = main(["chip-report", "--checkpoint", str(checkpoint), *self.COMMON,
                     "--max-timesteps", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Chip summary" in output
        assert "Fig. 1A" in output
        assert "Fig. 1B" in output
        assert "Area breakdown" in output
