"""Tests for the autograd Tensor: arithmetic, broadcasting, backward correctness."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, float64_enabled, no_grad, stack, where

# Default-policy assertions do not apply when the whole suite runs under the
# REPRO_FLOAT64=1 legacy-numerics CI job.
requires_default_policy = pytest.mark.skipif(
    float64_enabled(), reason="suite is running under REPRO_FLOAT64=1"
)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-2) -> np.ndarray:
    """Central-difference numerical gradient of a scalar-valued function.

    ``fn`` evaluates through float32 Tensors (the stack's dtype policy), so
    the step must be large enough that the difference is not drowned by
    float32 roundoff (~1.2e-7 relative per evaluation).  The functions under
    test are at most quadratic, so the larger step adds no truncation error.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn(x)
        flat[index] = original - eps
        minus = fn(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


class TestBasics:
    def test_tensor_wraps_array_as_float32(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.dtype == np.float32
        assert t.shape == (2, 2)

    @requires_default_policy
    def test_float64_input_is_coerced_to_float32(self):
        """The documented dtype policy: construction normalizes to float32 —
        including float64 arrays, which the seed silently passed through."""
        t = Tensor(np.arange(4, dtype=np.float64))
        assert t.dtype == np.float32

    @requires_default_policy
    def test_python_scalar_wraps_as_float32(self):
        # np.asarray(0.5) alone would be a float64 0-d array (the old leak).
        assert Tensor(0.5).dtype == np.float32
        assert Tensor([0.5, 1.5]).dtype == np.float32

    @requires_default_policy
    def test_scalar_operand_does_not_promote(self):
        """Weak-scalar policy: ops with Python scalars stay in the array dtype."""
        t = Tensor(np.ones(3, dtype=np.float32))
        for result in (t * 0.5, t + 0.1, t - 0.1, t / 2.0, 2.0 * t, 1.0 - t):
            assert result.dtype == np.float32

    def test_float64_passthrough_under_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOAT64", "1")
        kept = Tensor(np.arange(4, dtype=np.float64))
        assert kept.dtype == np.float64
        assert Tensor(0.5).dtype == np.float64
        # Non-float inputs still normalize to float32, as the seed did.
        assert Tensor(np.arange(4, dtype=np.int32)).dtype == np.float32
        # And the 0-d float64 scalar promotes the op result (the legacy leak).
        assert (Tensor(np.ones(3, dtype=np.float32)) * 0.5).dtype == np.float64

    def test_tensor_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.shares_memory(a.data, b.data)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_len_and_size(self):
        t = Tensor(np.zeros((5, 3)))
        assert len(t) == 5
        assert t.size == 15

    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(RuntimeError):
            out.backward()

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 3
        assert not b.requires_grad

    def test_comparison_returns_bool_array(self):
        a = Tensor([0.5, 1.5])
        mask = a > 1.0
        assert mask.dtype == bool
        assert mask.tolist() == [False, True]


class TestArithmeticForward:
    def test_add_sub_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_scalar_operands(self):
        a = Tensor([2.0, 4.0])
        assert np.allclose((a + 1).data, [3, 5])
        assert np.allclose((1 + a).data, [3, 5])
        assert np.allclose((a * 3).data, [6, 12])
        assert np.allclose((3 - a).data, [1, -1])
        assert np.allclose((8 / a).data, [4, 2])

    def test_neg_and_pow(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).data, [-2, 3])
        assert np.allclose((a**2).data, [4, 9])

    def test_broadcast_add(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((3,)))
        assert (a + b).shape == (2, 3)


class TestBackwardElementwise:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3, 4])
        assert np.allclose(b.grad, [1, 2])

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_broadcast_backward_sums_over_broadcast_axes(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2, 2, 2])

    def test_gradient_accumulates_over_multiple_uses(self):
        a = Tensor([2.0], requires_grad=True)
        out = a * 3 + a * 4
        out.backward()
        assert np.allclose(a.grad, [7.0])

    def test_chain_matches_numerical(self):
        x0 = np.random.default_rng(0).normal(size=(4, 3))

        def f(x):
            t = Tensor(x.astype(np.float64), requires_grad=True)
            return float(((t * 2 + 1) * t).sum().data)

        t = Tensor(x0, requires_grad=True)
        ((t * 2 + 1) * t).sum().backward()
        assert np.allclose(t.grad, numerical_gradient(f, x0.copy()), atol=1e-3)


class TestUnaryOps:
    @pytest.mark.parametrize(
        "op, derivative",
        [
            ("exp", lambda x: np.exp(x)),
            ("log", lambda x: 1.0 / x),
            ("sqrt", lambda x: 0.5 / np.sqrt(x)),
            ("tanh", lambda x: 1 - np.tanh(x) ** 2),
            ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
        ],
    )
    def test_unary_gradients(self, op, derivative):
        x = np.array([0.5, 1.2, 2.0], dtype=np.float64)
        t = Tensor(x, requires_grad=True)
        getattr(t, op)().sum().backward()
        assert np.allclose(t.grad, derivative(x), atol=1e-5)

    def test_relu_gradient_masks_negatives(self):
        t = Tensor([-1.0, 0.5], requires_grad=True)
        t.relu().sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0])

    def test_abs_gradient(self):
        t = Tensor([-2.0, 3.0], requires_grad=True)
        t.abs().sum().backward()
        assert np.allclose(t.grad, [-1.0, 1.0])

    def test_clip_gradient_zero_outside_range(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        t = Tensor(np.arange(6).reshape(2, 3), requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_mean_gradient_scales(self):
        t = Tensor(np.ones((4,)), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        assert np.allclose(t.mean(axis=0).data, np.arange(12).reshape(3, 4).mean(axis=0))

    def test_max_gradient_goes_to_argmax(self):
        t = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        t.max().backward()
        assert np.allclose(t.grad, [0, 1, 0])

    def test_max_axis(self):
        t = Tensor([[1.0, 2.0], [4.0, 3.0]], requires_grad=True)
        out = t.max(axis=1)
        assert np.allclose(out.data, [2, 4])

    def test_var_matches_numpy(self):
        x = np.random.default_rng(1).normal(size=(5, 4)).astype(np.float32)
        t = Tensor(x)
        assert np.allclose(t.var(axis=0).data, x.var(axis=0), atol=1e-5)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        t = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        assert t.grad.shape == (6,)

    def test_transpose(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = t.transpose()
        assert out.shape == (3, 2)
        out.sum().backward()
        assert t.grad.shape == (2, 3)

    def test_transpose_with_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_getitem_gradient_scatter(self):
        t = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        t[1:3].sum().backward()
        assert np.allclose(t.grad, [0, 1, 1, 0, 0])

    def test_pad2d_and_gradient(self):
        t = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = t.pad2d(1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        assert np.allclose(t.grad, np.ones((1, 1, 2, 2)))

    def test_flatten(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.flatten(start_dim=1).shape == (2, 12)


class TestMatmul:
    def test_matmul_forward(self):
        a = np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)
        b = np.random.default_rng(1).normal(size=(4, 5)).astype(np.float32)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b, atol=1e-5)

    def test_matmul_gradients_match_numerical(self):
        rng = np.random.default_rng(2)
        a0 = rng.normal(size=(3, 4))
        b0 = rng.normal(size=(4, 2))

        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a @ b).sum().backward()

        def fa(x):
            return float((x @ b0).sum())

        def fb(x):
            return float((a0 @ x).sum())

        assert np.allclose(a.grad, numerical_gradient(fa, a0.copy()), atol=1e-4)
        assert np.allclose(b.grad, numerical_gradient(fb, b0.copy()), atol=1e-4)

    def test_batched_matmul(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)
        assert np.allclose(b.grad, np.full((4, 5), 6.0))


class TestCustomGrad:
    def test_custom_grad_forward_is_heaviside(self):
        t = Tensor([-0.5, 0.5, 1.5], requires_grad=True)
        spikes = t.custom_grad(lambda u: (u > 1.0).astype(u.dtype), lambda u: np.ones_like(u))
        assert np.allclose(spikes.data, [0, 0, 1])

    def test_custom_grad_backward_uses_surrogate(self):
        t = Tensor([0.5, 1.0, 2.5], requires_grad=True)
        surrogate = lambda u: np.maximum(0.0, 1.0 - np.abs(u - 1.0))
        spikes = t.custom_grad(lambda u: (u > 1.0).astype(u.dtype), surrogate)
        spikes.sum().backward()
        assert np.allclose(t.grad, surrogate(np.array([0.5, 1.0, 2.5])))


class TestStackConcatWhere:
    def test_stack_forward_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_concatenate_gradient_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, np.full((2, 2), 2.0))
        assert np.allclose(b.grad, np.full((3, 2), 2.0))

    def test_where_selects_and_routes_gradient(self):
        condition = np.array([True, False])
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = where(condition, a, b)
        assert np.allclose(out.data, [1, 4])
        out.sum().backward()
        assert np.allclose(a.grad, [1, 0])
        assert np.allclose(b.grad, [0, 1])
