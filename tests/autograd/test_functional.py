"""Tests for differentiable functional ops: conv2d, pooling, softmax, losses."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    conv2d,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    max_pool2d,
    nll_loss,
    one_hot,
    softmax,
)
from repro.autograd.ops import col2im, conv_output_size, im2col


def reference_conv2d(x, w, stride=1, padding=0):
    """Naive direct convolution used as ground truth."""
    n, c, h, width = x.shape
    oc, _, k, _ = w.shape
    out_h = (h + 2 * padding - k) // stride + 1
    out_w = (width + 2 * padding - k) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, oc, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            patch = xp[:, :, i * stride : i * stride + k, j * stride : j * stride + k]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    return out


class TestIm2col:
    def test_output_size(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 1) == 4
        assert conv_output_size(5, 2, 2, 0) == 2

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols, oh, ow = im2col(x, 3, 1, 1)
        assert (oh, ow) == (6, 6)
        assert cols.shape == (2, 36, 27)

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property).
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5))
        cols, oh, ow = im2col(x, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 2, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-6)


class TestLinear:
    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, w, b = rng.normal(size=(4, 3)), rng.normal(size=(5, 3)), rng.normal(size=(5,))
        out = linear(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data, x @ w.T + b, atol=1e-5)

    def test_gradients_shapes(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        w = Tensor(np.ones((5, 3)), requires_grad=True)
        b = Tensor(np.zeros((5,)), requires_grad=True)
        linear(x, w, b).sum().backward()
        assert x.grad.shape == (4, 3)
        assert w.grad.shape == (5, 3)
        assert b.grad.shape == (5,)
        assert np.allclose(b.grad, np.full(5, 4.0))


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_forward_matches_reference(self, stride, padding):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        expected = reference_conv2d(x, w, stride, padding)
        assert np.allclose(out.data, expected, atol=1e-4)

    def test_bias_added_per_channel(self):
        x = np.zeros((1, 1, 4, 4))
        w = np.zeros((2, 1, 3, 3))
        b = np.array([1.0, -2.0])
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), padding=1)
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_input_gradient_numerical(self):
        rng = np.random.default_rng(4)
        x0 = rng.normal(size=(1, 2, 5, 5))
        w0 = rng.normal(size=(3, 2, 3, 3))

        x = Tensor(x0, requires_grad=True)
        w = Tensor(w0, requires_grad=True)
        conv2d(x, w, stride=1, padding=1).sum().backward()

        eps = 1e-4
        grad_num = np.zeros_like(x0)
        flat = x0.reshape(-1)
        gflat = grad_num.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = reference_conv2d(x0, w0, 1, 1).sum()
            flat[i] = orig - eps
            minus = reference_conv2d(x0, w0, 1, 1).sum()
            flat[i] = orig
            gflat[i] = (plus - minus) / (2 * eps)
        assert np.allclose(x.grad, grad_num, atol=1e-3)

    def test_weight_gradient_numerical(self):
        rng = np.random.default_rng(5)
        x0 = rng.normal(size=(2, 2, 4, 4))
        w0 = rng.normal(size=(2, 2, 3, 3))
        x = Tensor(x0, requires_grad=True)
        w = Tensor(w0, requires_grad=True)
        conv2d(x, w, stride=1, padding=0).sum().backward()

        eps = 1e-4
        grad_num = np.zeros_like(w0)
        flat = w0.reshape(-1)
        gflat = grad_num.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = reference_conv2d(x0, w0, 1, 0).sum()
            flat[i] = orig - eps
            minus = reference_conv2d(x0, w0, 1, 0).sum()
            flat[i] = orig
            gflat[i] = (plus - minus) / (2 * eps)
        assert np.allclose(w.grad, grad_num, atol=1e-3)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))


class TestPooling:
    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        expected = np.array([[2.5, 4.5], [10.5, 12.5]])
        assert np.allclose(out.data[0, 0], expected)

    def test_avg_pool_gradient_uniform(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_hits_argmax_only(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == pytest.approx(4.0)
        assert x.grad[0, 0, 1, 1] == pytest.approx(1.0)
        assert x.grad[0, 0, 0, 0] == pytest.approx(0.0)


class TestSoftmaxLosses:
    def test_softmax_sums_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        probs = softmax(logits)
        assert np.allclose(probs.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(Tensor([[1000.0, 0.0]]))
        assert np.isfinite(probs.data).all()

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
        assert np.allclose(log_softmax(logits).data, np.log(softmax(logits).data), atol=1e-5)

    def test_one_hot(self):
        encoded = one_hot(np.array([0, 2]), 3)
        assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_cross_entropy_value(self):
        logits = Tensor(np.array([[10.0, 0.0], [0.0, 10.0]]))
        labels = np.array([0, 1])
        assert float(cross_entropy(logits, labels).data) < 1e-3

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits_np = np.array([[1.0, 2.0, 0.5]])
        logits = Tensor(logits_np, requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        probs = np.exp(logits_np) / np.exp(logits_np).sum()
        expected = (probs - np.array([[0.0, 1.0, 0.0]]))
        assert np.allclose(logits.grad, expected, atol=1e-5)

    def test_nll_loss_matches_cross_entropy(self):
        logits = Tensor(np.random.default_rng(2).normal(size=(6, 4)))
        labels = np.array([0, 1, 2, 3, 0, 1])
        ce = float(cross_entropy(logits, labels).data)
        nll = float(nll_loss(log_softmax(logits), labels).data)
        assert ce == pytest.approx(nll, rel=1e-5)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = dropout(x, 0.5, training=False)
        assert np.allclose(out.data, x.data)

    def test_training_mode_scales_survivors(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, training=True)
