"""Tests for batch augmentation transforms."""

import numpy as np
import pytest

from repro.data import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomCropWithPadding,
    RandomHorizontalFlip,
)


@pytest.fixture
def batch():
    return np.random.default_rng(0).random((6, 3, 8, 8)).astype(np.float32)


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestFlip:
    def test_always_flip(self, batch, rng):
        flipped = RandomHorizontalFlip(p=1.0)(batch, rng)
        assert np.allclose(flipped, batch[..., ::-1])

    def test_never_flip(self, batch, rng):
        assert np.allclose(RandomHorizontalFlip(p=0.0)(batch, rng), batch)

    def test_does_not_modify_input(self, batch, rng):
        original = batch.copy()
        RandomHorizontalFlip(p=1.0)(batch, rng)
        assert np.allclose(batch, original)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=1.5)


class TestCrop:
    def test_output_shape_preserved(self, batch, rng):
        cropped = RandomCropWithPadding(padding=2)(batch, rng)
        assert cropped.shape == batch.shape

    def test_zero_padding_is_identity(self, batch, rng):
        assert np.allclose(RandomCropWithPadding(padding=0)(batch, rng), batch)

    def test_crop_shifts_content(self, rng):
        batch = np.zeros((1, 1, 6, 6), dtype=np.float32)
        batch[0, 0, 3, 3] = 1.0
        shifted_any = False
        for _ in range(20):
            out = RandomCropWithPadding(padding=2)(batch, rng)
            if not np.allclose(out, batch):
                shifted_any = True
                break
        assert shifted_any


class TestNoiseAndNormalize:
    def test_noise_changes_values(self, batch, rng):
        noisy = GaussianNoise(sigma=0.1)(batch, rng)
        assert not np.allclose(noisy, batch)

    def test_zero_sigma_identity(self, batch, rng):
        assert np.allclose(GaussianNoise(sigma=0.0)(batch, rng), batch)

    def test_normalize(self, rng):
        batch = np.ones((2, 3, 4, 4), dtype=np.float32)
        out = Normalize(mean=[1.0, 1.0, 1.0], std=[2.0, 2.0, 2.0])(batch, rng)
        assert np.allclose(out, 0.0)

    def test_normalize_rejects_zero_std(self):
        with pytest.raises(ValueError):
            Normalize(mean=[0.0], std=[0.0])


class TestCompose:
    def test_applies_in_order(self, rng):
        batch = np.full((1, 1, 4, 4), 2.0, dtype=np.float32)
        pipeline = Compose([
            Normalize(mean=[2.0], std=[1.0]),
            GaussianNoise(sigma=0.0),
        ])
        assert np.allclose(pipeline(batch, rng), 0.0)
