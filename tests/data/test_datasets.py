"""Tests for ArrayDataset, DataLoader and train/test splitting."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, train_test_split


def make_dataset(n=20, classes=4):
    rng = np.random.default_rng(0)
    inputs = rng.random((n, 3, 4, 4)).astype(np.float32)
    labels = rng.integers(0, classes, size=n)
    return ArrayDataset(inputs, labels, metadata=np.arange(n), num_classes=classes)


class TestArrayDataset:
    def test_length_and_shapes(self):
        ds = make_dataset(12)
        assert len(ds) == 12
        assert ds.sample_shape == (3, 4, 4)

    def test_getitem(self):
        ds = make_dataset()
        x, y = ds[3]
        assert x.shape == (3, 4, 4)
        assert np.isscalar(y) or y.shape == ()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4, dtype=np.int64))

    def test_labels_must_be_1d(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros((3, 1), dtype=np.int64))

    def test_metadata_length_checked(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(3, dtype=np.int64), metadata=np.zeros(2))

    def test_num_classes_inferred(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 1, 2, 1]))
        assert ds.num_classes == 3

    def test_subset_preserves_metadata(self):
        ds = make_dataset(10)
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        assert np.allclose(sub.metadata, [1, 3, 5])
        assert sub.num_classes == ds.num_classes

    def test_class_counts_sum_to_length(self):
        ds = make_dataset(30)
        assert ds.class_counts().sum() == 30


class TestSplit:
    def test_sizes(self):
        train, test = train_test_split(make_dataset(20), test_fraction=0.25, seed=0)
        assert len(train) == 15
        assert len(test) == 5

    def test_disjoint_samples(self):
        ds = make_dataset(20)
        train, test = train_test_split(ds, 0.3, seed=1)
        train_ids = set(train.metadata.tolist())
        test_ids = set(test.metadata.tolist())
        assert not train_ids & test_ids
        assert len(train_ids | test_ids) == 20

    def test_deterministic_given_seed(self):
        ds = make_dataset(20)
        a = train_test_split(ds, 0.3, seed=5)[0].metadata
        b = train_test_split(ds, 0.3, seed=5)[0].metadata
        assert np.array_equal(a, b)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(), 0.0)
        with pytest.raises(ValueError):
            train_test_split(make_dataset(), 1.0)


class TestDataLoader:
    def test_batch_count(self):
        loader = DataLoader(make_dataset(20), batch_size=6, shuffle=False)
        assert len(loader) == 4
        batches = list(loader)
        assert batches[-1][0].shape[0] == 2

    def test_drop_last(self):
        loader = DataLoader(make_dataset(20), batch_size=6, shuffle=False, drop_last=True)
        assert len(loader) == 3
        assert all(batch[0].shape[0] == 6 for batch in loader)

    def test_covers_all_samples(self):
        ds = make_dataset(17)
        loader = DataLoader(ds, batch_size=5, shuffle=True, seed=0)
        seen = sum(batch[0].shape[0] for batch in loader)
        assert seen == 17

    def test_shuffle_changes_order(self):
        ds = make_dataset(32)
        loader = DataLoader(ds, batch_size=32, shuffle=True, seed=0)
        first_epoch = next(iter(loader))[1]
        second_epoch = next(iter(loader))[1]
        assert not np.array_equal(first_epoch, second_epoch)

    def test_no_shuffle_preserves_order(self):
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=10, shuffle=False)
        _, labels = next(iter(loader))
        assert np.array_equal(labels, ds.labels)

    def test_transform_applied(self):
        ds = make_dataset(8)
        loader = DataLoader(ds, batch_size=4, shuffle=False, transform=lambda x, rng: x * 0.0)
        inputs, _ = next(iter(loader))
        assert np.allclose(inputs, 0.0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)


class TestDeterministicReplay:
    def test_every_epoch_replays_identical_order(self):
        ds = make_dataset(40)
        loader = DataLoader(ds, batch_size=8, shuffle=True, seed=4, deterministic=True)
        first_epoch = [labels.copy() for _, labels in loader]
        second_epoch = [labels.copy() for _, labels in loader]
        for first, second in zip(first_epoch, second_epoch):
            assert np.array_equal(first, second)

    def test_same_seed_loaders_replay_identical_streams(self):
        ds = make_dataset(40)
        first = DataLoader(ds, batch_size=8, shuffle=True, seed=4, deterministic=True)
        second = DataLoader(ds, batch_size=8, shuffle=True, seed=4, deterministic=True)
        for (a_inputs, a_labels), (b_inputs, b_labels) in zip(first, second):
            assert np.array_equal(a_inputs, b_inputs)
            assert np.array_equal(a_labels, b_labels)

    def test_different_seeds_differ(self):
        ds = make_dataset(40)
        first = next(iter(DataLoader(ds, batch_size=40, shuffle=True, seed=1, deterministic=True)))[1]
        second = next(iter(DataLoader(ds, batch_size=40, shuffle=True, seed=2, deterministic=True)))[1]
        assert not np.array_equal(first, second)

    def test_deterministic_transform_draws_replay(self):
        ds = make_dataset(16)
        noise = lambda x, rng: x + rng.normal(size=x.shape).astype(np.float32)
        loader = DataLoader(
            ds, batch_size=8, shuffle=True, seed=4, deterministic=True, transform=noise
        )
        first_epoch = [inputs.copy() for inputs, _ in loader]
        second_epoch = [inputs.copy() for inputs, _ in loader]
        for first, second in zip(first_epoch, second_epoch):
            assert np.array_equal(first, second)

    def test_default_loader_still_reshuffles(self):
        ds = make_dataset(40)
        loader = DataLoader(ds, batch_size=40, shuffle=True, seed=4)
        first_epoch = next(iter(loader))[1]
        second_epoch = next(iter(loader))[1]
        assert not np.array_equal(first_epoch, second_epoch)
