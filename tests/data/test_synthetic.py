"""Tests for the synthetic image and event-stream dataset generators."""

import numpy as np
import pytest

from repro.data import (
    SyntheticDVSConfig,
    SyntheticImageConfig,
    generate_class_prototypes,
    make_cifar10_like,
    make_cifar100_like,
    make_dvs_like,
    make_synthetic_images,
    make_tinyimagenet_like,
)


class TestPrototypes:
    def test_shape_and_range(self):
        protos = generate_class_prototypes(5, 12, 3, rng=np.random.default_rng(0))
        assert protos.shape == (5, 3, 12, 12)
        assert protos.min() >= 0.0
        assert protos.max() <= 1.0 + 1e-6

    def test_classes_are_distinct(self):
        protos = generate_class_prototypes(6, 16, 1, rng=np.random.default_rng(1))
        flat = protos.reshape(6, -1)
        for i in range(6):
            for j in range(i + 1, 6):
                corr = np.corrcoef(flat[i], flat[j])[0, 1]
                assert corr < 0.995


class TestSyntheticImages:
    def test_generation_shapes_and_metadata(self):
        config = SyntheticImageConfig(num_classes=6, num_samples=50, image_size=10, seed=0)
        ds = make_synthetic_images(config)
        assert len(ds) == 50
        assert ds.sample_shape == (3, 10, 10)
        assert ds.num_classes == 6
        assert ds.metadata.shape == (50,)

    def test_reproducible_with_seed(self):
        config = SyntheticImageConfig(num_samples=20, seed=42)
        a = make_synthetic_images(config)
        b = make_synthetic_images(config)
        assert np.allclose(a.inputs, b.inputs)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seed_differs(self):
        a = make_synthetic_images(SyntheticImageConfig(num_samples=20, seed=0))
        b = make_synthetic_images(SyntheticImageConfig(num_samples=20, seed=1))
        assert not np.allclose(a.inputs, b.inputs)

    def test_all_classes_present_with_enough_samples(self):
        ds = make_synthetic_images(SyntheticImageConfig(num_classes=5, num_samples=400, seed=3))
        assert (ds.class_counts() > 0).all()

    def test_difficulty_in_unit_interval(self):
        ds = make_synthetic_images(SyntheticImageConfig(num_samples=60, seed=2))
        assert (ds.metadata >= 0.0).all()
        assert (ds.metadata <= 1.0).all()

    def test_easy_fraction_controls_difficulty_mix(self):
        easy = make_synthetic_images(
            SyntheticImageConfig(num_samples=300, easy_fraction=0.9, seed=0)
        )
        hard = make_synthetic_images(
            SyntheticImageConfig(num_samples=300, easy_fraction=0.1, seed=0)
        )
        assert easy.metadata.mean() < hard.metadata.mean()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_samples=0).validate()
        with pytest.raises(ValueError):
            SyntheticImageConfig(easy_fraction=1.5).validate()
        with pytest.raises(ValueError):
            SyntheticImageConfig(easy_contrast=(0.9, 0.5)).validate()

    def test_pixel_values_bounded(self):
        ds = make_synthetic_images(SyntheticImageConfig(num_samples=30, seed=1))
        assert ds.inputs.min() >= 0.0
        assert ds.inputs.max() <= 1.5


class TestPresets:
    def test_cifar10_like(self):
        ds = make_cifar10_like(num_samples=40, image_size=8)
        assert ds.num_classes == 10
        assert ds.sample_shape == (3, 8, 8)

    def test_cifar100_like_has_more_classes(self):
        assert make_cifar100_like(num_samples=40).num_classes > make_cifar10_like(40).num_classes

    def test_tinyimagenet_like_is_hardest(self):
        c10 = make_cifar10_like(num_samples=400)
        tiny = make_tinyimagenet_like(num_samples=400)
        assert tiny.metadata.mean() > c10.metadata.mean()
        assert tiny.num_classes > c10.num_classes


class TestDVS:
    def test_stream_shape(self):
        ds = make_dvs_like(SyntheticDVSConfig(num_samples=20, num_frames=6, image_size=8, seed=0))
        assert ds.inputs.shape == (20, 6, 2, 8, 8)

    def test_events_are_binaryish(self):
        ds = make_dvs_like(SyntheticDVSConfig(num_samples=10, seed=1))
        assert set(np.unique(ds.inputs)).issubset({0.0, 1.0})

    def test_events_sparse(self):
        ds = make_dvs_like(SyntheticDVSConfig(num_samples=10, seed=2))
        assert ds.inputs.mean() < 0.5

    def test_information_accumulates_over_frames(self):
        # The union of events over more frames should cover more pixels.
        ds = make_dvs_like(SyntheticDVSConfig(num_samples=30, num_frames=8, seed=3))
        early = (ds.inputs[:, :2].sum(axis=1) > 0).mean()
        late = (ds.inputs[:, :8].sum(axis=1) > 0).mean()
        assert late > early

    def test_reproducible(self):
        config = SyntheticDVSConfig(num_samples=5, seed=9)
        assert np.allclose(make_dvs_like(config).inputs, make_dvs_like(config).inputs)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticDVSConfig(num_frames=0).validate()
