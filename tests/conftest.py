"""Shared fixtures for the test suite.

Training a spiking network — even a tiny one — is the most expensive
operation in the suite, so a single trained model / dataset pair is built
once per session and reused by the DT-SNN, IMC and integration tests.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import DataLoader, make_cifar10_like, train_test_split
from repro.snn import spiking_vgg
from repro.training import Trainer, TrainingConfig, collect_cumulative_logits
from repro.utils import seed_everything


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small CIFAR-10-like synthetic dataset split into train/test."""
    seed_everything(123)
    dataset = make_cifar10_like(num_samples=240, image_size=10, seed=7)
    return train_test_split(dataset, test_fraction=0.3, seed=3)


@pytest.fixture(scope="session")
def tiny_loaders(tiny_dataset):
    train, test = tiny_dataset
    return (
        DataLoader(train, batch_size=32, seed=11),
        DataLoader(test, batch_size=64, shuffle=False),
    )


@pytest.fixture(scope="session")
def trained_model(tiny_loaders):
    """A tiny spiking VGG trained for a few epochs with the Eq. 10 loss."""
    seed_everything(5)
    model = spiking_vgg("tiny", num_classes=10, input_size=10, default_timesteps=4)
    trainer = Trainer(
        model,
        TrainingConfig(epochs=5, timesteps=4, learning_rate=0.15, loss="per_timestep"),
    )
    train_loader, test_loader = tiny_loaders
    trainer.fit(train_loader, test_loader)
    return model


@pytest.fixture(scope="session")
def cumulative_logits(trained_model, tiny_loaders):
    """Cached (T, N, K) cumulative logits + labels of the trained model on test data."""
    _, test_loader = tiny_loaders
    return collect_cumulative_logits(trained_model, test_loader, timesteps=4)


@pytest.fixture(scope="session")
def untrained_tiny_model():
    """An untrained tiny network for shape/state tests that do not need accuracy."""
    seed_everything(9)
    return spiking_vgg("tiny", num_classes=10, input_size=10, default_timesteps=3)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def pytest_sessionfinish(session, exitstatus):
    """Export the lock-acquisition graph when the tracked shard asks for it.

    The CI static-analysis job runs a suite shard under REPRO_LOCK_CHECK=1
    with REPRO_LOCK_GRAPH_OUT pointing at an artifact path; cycles raise
    LockOrderError at the offending acquire, and the dumped JSON is the
    evidence reviewers read (docs/ANALYSIS.md).
    """
    out = os.environ.get("REPRO_LOCK_GRAPH_OUT")
    if not out:
        return
    from repro.analysis.lockorder import assert_acyclic, dump_graph

    dump_graph(out)
    # Belt and braces: a cycle normally raises at acquire time, but the
    # exported graph must also be globally consistent.
    assert_acyclic()
