"""Tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.training import SGD, Adam, ConstantLR, CosineAnnealingLR, StepLR


def make_param(value=1.0, grad=0.5):
    param = Parameter(np.array([value], dtype=np.float32))
    param.grad = np.array([grad], dtype=np.float32)
    return param


class TestSGD:
    def test_plain_step(self):
        param = make_param(1.0, 0.5)
        SGD([param], lr=0.1, momentum=0.0, weight_decay=0.0).step()
        assert param.data[0] == pytest.approx(0.95)

    def test_weight_decay_adds_l2_pull(self):
        param = make_param(1.0, 0.0)
        SGD([param], lr=0.1, momentum=0.0, weight_decay=0.1).step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.1)

    def test_momentum_accelerates(self):
        param_plain = make_param(1.0, 0.5)
        param_momentum = make_param(1.0, 0.5)
        plain = SGD([param_plain], lr=0.1, momentum=0.0, weight_decay=0.0)
        momentum = SGD([param_momentum], lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(3):
            param_plain.grad = np.array([0.5], dtype=np.float32)
            param_momentum.grad = np.array([0.5], dtype=np.float32)
            plain.step()
            momentum.step()
        assert param_momentum.data[0] < param_plain.data[0]

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.array([2.0], dtype=np.float32))
        SGD([param], lr=0.1).step()
        assert param.data[0] == pytest.approx(2.0)

    def test_zero_grad(self):
        param = make_param()
        optimizer = SGD([param], lr=0.1)
        optimizer.zero_grad()
        assert param.grad is None

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_minimizes_quadratic(self):
        # f(w) = (w - 3)^2; gradient 2(w - 3)
        param = Parameter(np.array([0.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(100):
            param.grad = 2.0 * (param.data - 3.0)
            optimizer.step()
        assert param.data[0] == pytest.approx(3.0, abs=1e-2)


class TestAdam:
    def test_minimizes_quadratic(self):
        param = Parameter(np.array([0.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            param.grad = 2.0 * (param.data - 3.0)
            optimizer.step()
        assert param.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([make_param()], lr=0.1, betas=(1.0, 0.999))

    def test_step_changes_parameter(self):
        param = make_param(1.0, 0.5)
        Adam([param], lr=0.01).step()
        assert param.data[0] != 1.0


class TestSchedulers:
    def _optimizer(self, lr=0.1):
        return SGD([make_param()], lr=lr)

    def test_cosine_decays_to_min(self):
        optimizer = self._optimizer(0.1)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.001)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.001, abs=1e-6)

    def test_cosine_monotonically_decreasing(self):
        optimizer = self._optimizer(0.1)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=8)
        lrs = [scheduler.step() for _ in range(8)]
        assert all(lrs[i] >= lrs[i + 1] for i in range(len(lrs) - 1))

    def test_cosine_halfway_point(self):
        optimizer = self._optimizer(0.2)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.0)
        for _ in range(5):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1, rel=1e-3)

    def test_step_lr_milestones(self):
        optimizer = self._optimizer(1.0)
        scheduler = StepLR(optimizer, milestones=[2, 4], gamma=0.1)
        lrs = [scheduler.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)

    def test_constant_lr(self):
        optimizer = self._optimizer(0.05)
        scheduler = ConstantLR(optimizer)
        for _ in range(5):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.05)

    def test_invalid_total_epochs(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), total_epochs=0)
