"""Tests for the Eq. 9 / Eq. 10 / TET training losses."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.snn.network import TemporalOutput
from repro.training import FinalTimestepLoss, LOSSES, PerTimestepLoss, TETLoss, build_loss


def make_output(per_timestep_values):
    """Build a TemporalOutput from a list of (N, K) arrays."""
    return TemporalOutput(per_timestep=[Tensor(np.asarray(v, dtype=np.float32)) for v in per_timestep_values])


GOOD = np.array([[5.0, 0.0], [0.0, 5.0]])   # confidently correct for labels [0, 1]
BAD = np.array([[0.0, 5.0], [5.0, 0.0]])    # confidently wrong
LABELS = np.array([0, 1])


class TestFinalTimestepLoss:
    def test_low_when_final_correct(self):
        output = make_output([BAD, GOOD, GOOD, GOOD])
        loss = FinalTimestepLoss()(output, LABELS)
        assert float(loss.data) < 0.5

    def test_ignores_intermediate_outputs(self):
        # Two outputs with the same cumulative mean but different intermediate
        # trajectories must give the same Eq. 9 loss.
        a = make_output([GOOD, GOOD])
        b = make_output([2 * GOOD, np.zeros_like(GOOD)])
        la = float(FinalTimestepLoss()(a, LABELS).data)
        lb = float(FinalTimestepLoss()(b, LABELS).data)
        assert la == pytest.approx(lb, rel=1e-5)

    def test_matches_cross_entropy_on_mean(self):
        from repro.autograd import cross_entropy

        output = make_output([GOOD, BAD])
        expected = float(cross_entropy(Tensor((GOOD + BAD) / 2.0), LABELS).data)
        assert float(FinalTimestepLoss()(output, LABELS).data) == pytest.approx(expected, rel=1e-5)


class TestPerTimestepLoss:
    def test_penalizes_bad_early_outputs(self):
        late_only = make_output([BAD, BAD, BAD, GOOD * 4])
        always_good = make_output([GOOD, GOOD, GOOD, GOOD])
        loss_late = float(PerTimestepLoss()(late_only, LABELS).data)
        loss_good = float(PerTimestepLoss()(always_good, LABELS).data)
        assert loss_late > loss_good

    def test_equals_final_loss_for_single_timestep(self):
        output = make_output([GOOD])
        assert float(PerTimestepLoss()(output, LABELS).data) == pytest.approx(
            float(FinalTimestepLoss()(output, LABELS).data), rel=1e-6
        )

    def test_gradient_reaches_all_timesteps(self):
        tensors = [Tensor(GOOD.copy(), requires_grad=True) for _ in range(3)]
        output = TemporalOutput(per_timestep=tensors)
        PerTimestepLoss()(output, LABELS).backward()
        assert all(t.grad is not None for t in tensors)

    def test_final_loss_gradient_still_reaches_early_timesteps_through_mean(self):
        tensors = [Tensor(GOOD.copy(), requires_grad=True) for _ in range(3)]
        output = TemporalOutput(per_timestep=tensors)
        FinalTimestepLoss()(output, LABELS).backward()
        # Early outputs contribute to the final mean, so they get gradient too,
        # but the per-timestep loss weights them more heavily (paper Sec. III-A(b)).
        assert all(t.grad is not None for t in tensors)


class TestTETLoss:
    def test_uses_instantaneous_outputs(self):
        # Cumulative mean is good at every horizon, but the instantaneous
        # second output is bad; TET must penalize it more than Eq. 10 does.
        output = make_output([GOOD * 2, BAD])
        tet = float(TETLoss()(output, LABELS).data)
        per_t = float(PerTimestepLoss()(output, LABELS).data)
        assert tet > per_t

    def test_equal_for_constant_outputs(self):
        output = make_output([GOOD, GOOD])
        assert float(TETLoss()(output, LABELS).data) == pytest.approx(
            float(PerTimestepLoss()(output, LABELS).data), rel=1e-5
        )


class TestRegistry:
    @pytest.mark.parametrize("name", ["final", "per_timestep", "tet"])
    def test_build_loss(self, name):
        assert build_loss(name).name == name

    def test_registry_contents(self):
        assert set(LOSSES.names()) >= {"final", "per_timestep", "tet"}

    def test_unknown_loss(self):
        with pytest.raises(KeyError):
            build_loss("focal")
