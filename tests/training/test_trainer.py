"""Tests for metrics and the training loop."""

import numpy as np
import pytest

from repro.data import DataLoader, make_cifar10_like, train_test_split
from repro.snn import spiking_vgg
from repro.training import (
    Trainer,
    TrainingConfig,
    accuracy_from_logits,
    collect_cumulative_logits,
    confusion_matrix,
    evaluate_accuracy,
    evaluate_per_timestep_accuracy,
    train_model,
)
from repro.utils import seed_everything


class TestMetrics:
    def test_accuracy_from_logits(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0], [2.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy_from_logits(logits, labels) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        assert matrix.tolist() == [[1, 1], [0, 1]]
        assert matrix.sum() == 3

    def test_collect_cumulative_logits_shapes(self, trained_model, tiny_loaders):
        _, test_loader = tiny_loaders
        collected = collect_cumulative_logits(trained_model, test_loader, timesteps=3)
        assert collected["logits"].shape[0] == 3
        assert collected["logits"].shape[1] == collected["labels"].shape[0]
        assert collected["logits"].shape[2] == 10

    def test_evaluate_accuracy_matches_last_timestep(self, trained_model, tiny_loaders):
        _, test_loader = tiny_loaders
        per_t = evaluate_per_timestep_accuracy(trained_model, test_loader, timesteps=4)
        full = evaluate_accuracy(trained_model, test_loader, timesteps=4)
        assert full == pytest.approx(per_t[-1])

    def test_per_timestep_accuracy_length(self, trained_model, tiny_loaders):
        _, test_loader = tiny_loaders
        per_t = evaluate_per_timestep_accuracy(trained_model, test_loader, timesteps=4)
        assert len(per_t) == 4
        assert all(0.0 <= a <= 1.0 for a in per_t)


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig().validate()

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0).validate()

    def test_invalid_optimizer(self):
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="lion").validate()

    def test_invalid_scheduler(self):
        with pytest.raises(ValueError):
            TrainingConfig(scheduler="poly").validate()


class TestTrainer:
    @pytest.fixture(scope="class")
    def small_data(self):
        seed_everything(21)
        dataset = make_cifar10_like(num_samples=120, image_size=8, seed=11)
        train, test = train_test_split(dataset, 0.25, seed=2)
        return (
            DataLoader(train, batch_size=30, seed=1),
            DataLoader(test, batch_size=30, shuffle=False),
        )

    def test_loss_decreases_over_training(self, small_data):
        seed_everything(3)
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        trainer = Trainer(model, TrainingConfig(epochs=4, timesteps=2, learning_rate=0.1))
        result = trainer.fit(*small_data)
        assert result.train_loss_history[-1] < result.train_loss_history[0]

    def test_accuracy_beats_chance(self, small_data):
        seed_everything(4)
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        result = Trainer(
            model, TrainingConfig(epochs=5, timesteps=2, learning_rate=0.15)
        ).fit(*small_data)
        assert result.final_eval_accuracy > 0.2  # chance level is 0.1

    def test_result_histories_have_epoch_length(self, small_data):
        seed_everything(5)
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        result = Trainer(model, TrainingConfig(epochs=3, timesteps=2)).fit(*small_data)
        assert result.epochs_run == 3
        assert len(result.train_loss_history) == 3
        assert len(result.eval_accuracy_history) == 3
        assert result.best_eval_accuracy() >= result.final_eval_accuracy - 1e-9

    def test_training_without_eval_loader(self, small_data):
        seed_everything(6)
        train_loader, _ = small_data
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        result = Trainer(model, TrainingConfig(epochs=1, timesteps=2)).fit(train_loader)
        assert result.eval_accuracy_history == []
        assert result.final_eval_accuracy == 0.0

    def test_adam_and_constant_schedule(self, small_data):
        seed_everything(7)
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        config = TrainingConfig(
            epochs=1, timesteps=2, optimizer="adam", scheduler="constant", learning_rate=0.01
        )
        result = Trainer(model, config).fit(*small_data)
        assert result.epochs_run == 1

    def test_train_model_convenience(self, small_data):
        seed_everything(8)
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        result = train_model(model, *small_data, config=TrainingConfig(epochs=1, timesteps=2))
        assert result.epochs_run == 1

    def test_gradient_clipping_applied(self, small_data):
        seed_everything(9)
        train_loader, _ = small_data
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        trainer = Trainer(
            model, TrainingConfig(epochs=1, timesteps=2, grad_clip=1e-6, learning_rate=0.1)
        )
        before = [p.data.copy() for p in model.parameters()]
        trainer.train_epoch(train_loader)
        after = [p.data for p in model.parameters()]
        # With an absurdly tight clip the parameters barely move.
        max_change = max(np.abs(a - b).max() for a, b in zip(after, before))
        assert max_change < 1e-2
