"""Package-level API surface tests."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.autograd",
            "repro.nn",
            "repro.snn",
            "repro.data",
            "repro.training",
            "repro.core",
            "repro.imc",
            "repro.processors",
            "repro.utils",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        imported = importlib.import_module(module)
        assert hasattr(imported, "__all__")
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.__all__ lists {name} but it is missing"

    def test_headline_symbols_are_convenient(self):
        # The README quickstart relies on these being importable from the root.
        for name in (
            "spiking_vgg",
            "spiking_resnet",
            "Trainer",
            "TrainingConfig",
            "DynamicTimestepInference",
            "EntropyExitPolicy",
            "IMCChip",
            "HardwareConfig",
            "calibrate_threshold",
            "account_result",
        ):
            assert hasattr(repro, name)
