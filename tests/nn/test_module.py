"""Tests for the Module/Parameter system: registration, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Identity, Linear, Sequential
from repro.nn.module import Module, ModuleList, Parameter


class TinyBlock(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(4, 3)
        self.scale = Parameter(np.ones((1,)))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestRegistration:
    def test_parameters_are_registered(self):
        block = TinyBlock()
        names = dict(block.named_parameters())
        assert "scale" in names
        assert "linear.weight" in names
        assert "linear.bias" in names

    def test_child_modules_registered(self):
        block = TinyBlock()
        assert "linear" in [name for name, _ in block.named_modules() if name]

    def test_num_parameters_counts_scalars(self):
        block = TinyBlock()
        assert block.num_parameters() == 4 * 3 + 3 + 1

    def test_buffers_registered_and_updatable(self):
        bn = BatchNorm2d(2)
        assert any(name == "running_mean" for name, _ in bn.named_buffers())
        bn.update_buffer("running_mean", np.array([1.0, 2.0], dtype=np.float32))
        assert np.allclose(bn.running_mean, [1, 2])

    def test_update_unknown_buffer_raises(self):
        bn = BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn.update_buffer("nope", np.zeros(2))


class TestModes:
    def test_train_eval_propagates(self):
        model = Sequential(TinyBlock(), TinyBlock())
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears(self):
        block = TinyBlock()
        from repro.autograd import Tensor

        out = block(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert block.linear.weight.grad is not None
        block.zero_grad()
        assert block.linear.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        source = TinyBlock()
        target = TinyBlock()
        target.load_state_dict(source.state_dict())
        assert np.allclose(source.linear.weight.data, target.linear.weight.data)

    def test_shape_mismatch_raises(self):
        block = TinyBlock()
        state = block.state_dict()
        state["linear.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            block.load_state_dict(state)

    def test_strict_missing_key_raises(self):
        block = TinyBlock()
        state = block.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            block.load_state_dict(state)

    def test_non_strict_allows_missing(self):
        block = TinyBlock()
        state = block.state_dict()
        del state["scale"]
        block.load_state_dict(state, strict=False)

    def test_state_dict_includes_buffers(self):
        bn = BatchNorm2d(3)
        assert "running_var" in bn.state_dict()


class TestContainers:
    def test_sequential_iterates_in_order(self):
        a, b = Identity(), Identity()
        seq = Sequential(a, b)
        assert list(seq) == [a, b]
        assert len(seq) == 2
        assert seq[1] is b

    def test_sequential_forward_chains(self):
        from repro.autograd import Tensor

        seq = Sequential(Linear(3, 5), Linear(5, 2))
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)

    def test_sequential_append(self):
        seq = Sequential(Identity())
        seq.append(Identity())
        assert len(seq) == 2

    def test_module_list_holds_modules(self):
        modules = ModuleList([Identity(), Identity()])
        assert len(modules) == 2
        assert isinstance(modules[0], Identity)
        # parameters of children are discoverable through the list
        modules.append(Linear(2, 2))
        assert len(list(modules.named_parameters() if hasattr(modules, 'named_parameters') else [])) >= 0
        parent_params = dict(modules.named_parameters())
        assert any("weight" in key for key in parent_params)
