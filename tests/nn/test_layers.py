"""Tests for standard layers: Linear, Conv2d, BatchNorm2d, pooling, dropout."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.init import calculate_fan, kaiming_normal, kaiming_uniform, xavier_uniform


class TestInit:
    def test_fan_linear(self):
        assert calculate_fan((8, 4)) == (4, 8)

    def test_fan_conv(self):
        fan_in, fan_out = calculate_fan((16, 3, 3, 3))
        assert fan_in == 27
        assert fan_out == 144

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            calculate_fan((3,))

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((256, 128), rng=rng)
        expected_std = np.sqrt(2.0 / 128)
        assert abs(w.std() - expected_std) / expected_std < 0.1

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform((64, 64), rng=rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_uniform_dtype(self):
        assert xavier_uniform((10, 10)).dtype == np.float32


class TestLinearLayer:
    def test_output_shape(self):
        layer = Linear(6, 4)
        assert layer(Tensor(np.ones((3, 6)))).shape == (3, 4)

    def test_no_bias(self):
        layer = Linear(6, 4, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 24

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestConvLayer:
    def test_output_shape_with_padding(self):
        layer = Conv2d(3, 8, 3, padding=1)
        assert layer(Tensor(np.ones((2, 3, 8, 8)))).shape == (2, 8, 8, 8)

    def test_output_shape_with_stride(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(Tensor(np.ones((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_gradient_flows_to_weight(self):
        layer = Conv2d(1, 2, 3, padding=1)
        out = layer(Tensor(np.ones((1, 1, 4, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.shape


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        bn = BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(8, 3, 4, 4)).astype(np.float32))
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-4
        assert abs(float(out.data.std()) - 1.0) < 0.05

    def test_running_stats_updated(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 2, 2), 3.0, dtype=np.float32))
        bn(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn.update_buffer("running_mean", np.array([1.0, 1.0], dtype=np.float32))
        bn.update_buffer("running_var", np.array([4.0, 4.0], dtype=np.float32))
        bn.eval()
        x = Tensor(np.full((1, 2, 2, 2), 3.0, dtype=np.float32))
        out = bn(x)
        assert np.allclose(out.data, 1.0, atol=1e-3)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            BatchNorm2d(2)(Tensor(np.zeros((3, 2))))

    def test_gamma_beta_trainable(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 2, 3, 3)).astype(np.float32))
        bn(x).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None


class TestPoolingLayers:
    def test_avg_pool_shape(self):
        assert AvgPool2d(2)(Tensor(np.ones((1, 3, 8, 8)))).shape == (1, 3, 4, 4)

    def test_max_pool_shape(self):
        assert MaxPool2d(2)(Tensor(np.ones((1, 3, 8, 8)))).shape == (1, 3, 4, 4)

    def test_adaptive_avg_pool_to_one(self):
        out = AdaptiveAvgPool2d(1)(Tensor(np.ones((2, 4, 6, 6))))
        assert out.shape == (2, 4, 1, 1)

    def test_adaptive_requires_divisible(self):
        with pytest.raises(ValueError):
            AdaptiveAvgPool2d(4)(Tensor(np.ones((1, 1, 6, 6))))

    def test_flatten(self):
        assert Flatten()(Tensor(np.ones((2, 3, 4, 4)))).shape == (2, 48)


class TestDropoutAndReLU:
    def test_dropout_respects_eval(self):
        layer = Dropout(0.9, seed=0)
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        assert np.allclose(layer(x).data, 1.0)

    def test_dropout_training_zeroes_some(self):
        layer = Dropout(0.5, seed=0)
        out = layer(Tensor(np.ones((50, 50))))
        assert (out.data == 0).any()

    def test_relu_layer(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0, 2])
