"""Unit tests for the shared-memory request/completion rings (same process).

Cross-process behaviour (spawned replicas, SIGKILL mid-traffic) is covered
by ``tests/serve/test_replica.py`` and ``tests/serve/test_conservation.py``;
these tests pin the ring mechanics that do not need a second process:
ticket round trips are bitwise and zero-copy, sequence/CRC guards reject
stale or corrupted slots loudly, completion records survive the fixed-width
encode/decode including every ``None`` sentinel, slot accounting enforces
the window invariant, and ``destroy`` unlinks ``/dev/shm`` exactly once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.runtime.rings import (
    COMPLETION_RECORD,
    PoolRings,
    RingIntegrityError,
    RingSpec,
    attach_rings,
)


def _make_rings(slots=4, slot_bytes=4096, **kwargs):
    return PoolRings.create(1, slots=slots, slot_bytes=slot_bytes, **kwargs)


def _shm_path(spec):
    return os.path.join("/dev/shm", spec.name)


# --------------------------------------------------------------------- #
# Request slab
# --------------------------------------------------------------------- #
def test_request_round_trip_is_bitwise_and_readonly():
    rings = _make_rings()
    try:
        writer = rings.writer(0)
        replica = attach_rings(rings.spec, 0)
        frame = np.arange(24, dtype=np.float32).reshape(2, 3, 4) * 0.25
        ticket = writer.try_write(frame)
        assert ticket is not None
        slot, seq, crc, nbytes, shape, dtype_str = ticket
        assert seq == 1
        assert nbytes == frame.nbytes
        assert shape == frame.shape
        assert dtype_str == frame.dtype.str

        view = replica.request_view(ticket)
        assert view.shape == frame.shape
        assert view.dtype == frame.dtype
        np.testing.assert_array_equal(view, frame)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0, 0] = 1.0
        del view  # release the exported pointer so the mapping can close
        replica.close()
    finally:
        rings.destroy()


def test_stale_ticket_fails_sequence_validation():
    rings = _make_rings(slots=1)
    try:
        writer = rings.writer(0)
        replica = attach_rings(rings.spec, 0)
        stale = writer.try_write(np.ones(4, dtype=np.float32))
        writer.release(stale[0])
        fresh = writer.try_write(np.zeros(4, dtype=np.float32))
        assert fresh[0] == stale[0] and fresh[1] != stale[1]
        # The reused slot serves the fresh ticket but rejects the stale one.
        np.testing.assert_array_equal(
            replica.request_view(fresh), np.zeros(4, dtype=np.float32))
        with pytest.raises(RingIntegrityError, match="sequence mismatch"):
            replica.request_view(stale)
        replica.close()
    finally:
        rings.destroy()


def test_corrupted_payload_fails_crc_validation():
    rings = _make_rings()
    try:
        writer = rings.writer(0)
        replica = attach_rings(rings.spec, 0)
        ticket = writer.try_write(np.arange(8, dtype=np.float32))
        # Flip one payload byte behind the writer's back.
        payload = writer._payloads[ticket[0]]
        payload[3] = payload[3] ^ 0xFF
        with pytest.raises(RingIntegrityError, match="CRC"):
            replica.request_view(ticket)
        del payload
        replica.close()
    finally:
        rings.destroy()


def test_oversized_payload_gets_no_ticket():
    rings = _make_rings(slot_bytes=256)
    try:
        writer = rings.writer(0)
        assert writer.try_write(np.zeros(1024, dtype=np.float32)) is None
        # The refusal consumed no slot.
        assert writer.free_slots() == rings.spec.slots
    finally:
        rings.destroy()


def test_slot_exhaustion_release_and_double_release():
    rings = _make_rings(slots=2)
    try:
        writer = rings.writer(0)
        frame = np.zeros(4, dtype=np.float32)
        first = writer.try_write(frame)
        second = writer.try_write(frame)
        assert first is not None and second is not None
        assert writer.free_slots() == 0
        assert writer.try_write(frame) is None
        writer.release(first[0])
        assert writer.free_slots() == 1
        assert writer.try_write(frame) is not None
        with pytest.raises(RuntimeError, match="double-released"):
            writer.release(second[0])
            writer.release(second[0])
    finally:
        rings.destroy()


# --------------------------------------------------------------------- #
# Completion ring
# --------------------------------------------------------------------- #
_COMPLETIONS = [
    # (request_id, prediction, exit_timestep, score, threshold,
    #  start_time, finish_time, epoch, brownout, horizon)
    (7, 3, 2, 0.875, 0.9, 10.5, 11.25, 4, False, 8),
    (8, 1, 5, 0.5, None, 12.0, 12.5, None, True, None),
    (9, 0, 1, 1.0, 0.0, 0.0, 0.0, 0, False, 0),
]


def test_completion_round_trip_preserves_none_sentinels():
    rings = _make_rings()
    try:
        replica = attach_rings(rings.spec, 0)
        reader = rings.reader(0)
        cursor = replica.write_completions(_COMPLETIONS)
        assert cursor == (0, len(_COMPLETIONS))
        decoded = reader.read(*cursor)
        assert decoded == _COMPLETIONS
        # A second batch wraps the ring and keeps absolute sequencing.
        wrap = [_COMPLETIONS[1]] * rings.spec.completion_slots
        cursor = replica.write_completions(wrap)
        assert cursor == (len(_COMPLETIONS), len(wrap))
        assert reader.read(*cursor) == wrap
        replica.close()
    finally:
        rings.destroy()


def test_completion_batch_larger_than_ring_falls_back():
    rings = _make_rings()
    try:
        replica = attach_rings(rings.spec, 0)
        oversize = [_COMPLETIONS[0]] * (rings.spec.completion_slots + 1)
        assert replica.write_completions(oversize) is None
        assert replica.write_completions([]) is None
        replica.close()
    finally:
        rings.destroy()


def test_corrupted_completion_record_fails_validation():
    rings = _make_rings()
    try:
        replica = attach_rings(rings.spec, 0)
        reader = rings.reader(0)
        cursor = replica.write_completions(_COMPLETIONS[:1])
        record = reader._records[0]
        record["prediction"] = record["prediction"] + 1  # CRC now stale
        with pytest.raises(RingIntegrityError, match="failed validation"):
            reader.read(*cursor)
        # A never-written cursor range fails the sequence check too.
        with pytest.raises(RingIntegrityError):
            reader.read(100, 1)
        del record
        replica.close()
    finally:
        rings.destroy()


# --------------------------------------------------------------------- #
# Layout and lifecycle
# --------------------------------------------------------------------- #
def test_layout_isolates_replicas_and_aligns_slots():
    spec = RingSpec.layout(3, slots=4, slot_bytes=1000)
    assert spec.slot_bytes % 64 == 0 and spec.slot_bytes >= 1000
    assert spec.completion_slots == 6
    assert len(spec.request_offsets) == len(spec.completion_offsets) == 3
    spans = sorted(
        [(off, off + 4 * (64 + spec.slot_bytes)) for off in spec.request_offsets]
        + [(off, off + 6 * COMPLETION_RECORD.itemsize)
           for off in spec.completion_offsets]
    )
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start  # no overlap between regions
    assert spans[-1][1] <= spec.size


def test_replica_rings_do_not_interfere():
    rings = PoolRings.create(2, slots=2, slot_bytes=256)
    try:
        writers = [rings.writer(0), rings.writer(1)]
        replicas = [attach_rings(rings.spec, 0), attach_rings(rings.spec, 1)]
        frames = [np.full(8, i, dtype=np.float32) for i in range(2)]
        tickets = [writers[i].try_write(frames[i]) for i in range(2)]
        for i in range(2):
            np.testing.assert_array_equal(
                replicas[i].request_view(tickets[i]), frames[i])
        cursors = [replicas[i].write_completions([_COMPLETIONS[i]])
                   for i in range(2)]
        for i in range(2):
            assert rings.reader(i).read(*cursors[i]) == [_COMPLETIONS[i]]
        for replica in replicas:
            replica.close()
    finally:
        rings.destroy()


def test_destroy_unlinks_shm_and_is_idempotent():
    rings = _make_rings()
    path = _shm_path(rings.spec)
    assert os.path.exists(path)
    rings.writer(0)
    rings.reader(0)
    rings.destroy()
    assert not os.path.exists(path)
    assert rings.destroyed
    rings.destroy()  # idempotent
