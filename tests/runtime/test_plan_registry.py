"""Shared-plan registry and content-keyed stem memo.

Plans are immutable after lowering (ops hold only parameter references and
idempotent derived-constant caches), so N executors — including N serving
workers on N threads — share one :class:`CompiledPlan` through the
process-wide :data:`repro.runtime.plan_registry`.  These tests pin the
registry contract (identity, negative caching, mode invalidation, thread
safety), the immutability property that makes sharing safe (per-executor
statistics toggles no longer mutate plan ops), and the :class:`StemCache`
memo semantics (bitwise assembly from mixed hit/miss batches, LRU bounds).
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.nn import Conv2d, Flatten, Linear, Sequential
from repro.nn.module import Module
from repro.runtime import (
    PlanExecutor,
    PlanRegistry,
    StemCache,
    executor_for,
    plan_for,
    plan_registry,
)
from repro.snn import SpikingNetwork, spiking_vgg
from repro.snn.encoding import EventFrameEncoder
from repro.snn.neurons import LIFNeuron
from repro.utils import seed_everything


def _tiny_vgg(encoder=None):
    seed_everything(11)
    kwargs = {"encoder": encoder} if encoder is not None else {}
    return spiking_vgg(
        "tiny", num_classes=5, input_size=8, default_timesteps=3, **kwargs
    ).eval()


class _Opaque(Module):
    def forward(self, x):  # pragma: no cover - never runs
        return x


class TestPlanRegistry:
    def test_same_model_same_plan_object(self):
        model = _tiny_vgg()
        assert plan_registry.get(model) is plan_registry.get(model)
        assert plan_for(model) is plan_registry.get(model)

    def test_distinct_models_distinct_plans(self):
        a, b = _tiny_vgg(), _tiny_vgg()
        assert plan_registry.get(a) is not plan_registry.get(b)

    def test_invalidate_forces_recompile(self):
        model = _tiny_vgg()
        first = plan_registry.get(model)
        assert plan_registry.invalidate(model) is True
        assert plan_registry.invalidate(model) is False  # already gone
        second = plan_registry.get(model)
        assert second is not first

    def test_mode_flip_invalidates(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOAT64", raising=False)
        registry = PlanRegistry()
        model = _tiny_vgg()
        default_plan = registry.get(model)
        assert default_plan.float64_mode is False
        monkeypatch.setenv("REPRO_FLOAT64", "1")
        legacy_plan = registry.get(model)
        assert legacy_plan is not default_plan
        assert legacy_plan.float64_mode is True
        if default_plan.stem_cache is not None:
            # A recompiled plan starts with a fresh (empty) stem memo.
            assert legacy_plan.stem_cache is not default_plan.stem_cache

    def test_unsupported_model_negative_cached(self):
        model = SpikingNetwork(
            Sequential(Conv2d(3, 4, 3, padding=1), _Opaque(), LIFNeuron()),
            Sequential(Flatten(), Linear(4 * 8 * 8, 5)),
            default_timesteps=2,
        ).eval()
        registry = PlanRegistry()
        assert registry.get(model) is None
        assert registry.get(model) is None  # negative entry, no re-lowering
        assert registry.invalidate(model) is True

    def test_concurrent_lookups_share_one_plan(self):
        model = _tiny_vgg()
        registry = PlanRegistry()
        plans, barrier = [], threading.Barrier(8)

        def lookup():
            barrier.wait()
            plans.append(registry.get(model))

        threads = [threading.Thread(target=lookup) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(plans) == 8
        assert all(plan is plans[0] for plan in plans)


class TestPlanImmutability:
    def test_statistics_toggle_is_per_executor_not_per_plan(self):
        """Two executors of ONE shared plan with opposite statistics settings
        must not interfere — the old implementation flipped a flag on the
        shared LIF ops, so the last-built executor silently won."""
        model = _tiny_vgg()
        silent = executor_for(model, use_runtime=True, collect_statistics=False)
        loud = executor_for(model, use_runtime=True, collect_statistics=True)
        assert silent.plan is loud.plan

        model.reset_spike_statistics()
        x = np.random.default_rng(3).random((2, 3, 8, 8)).astype(np.float32)
        silent.step(x)
        assert model.mean_spike_rate() == 0.0  # silent executor left counters alone
        loud.step(x)
        assert model.mean_spike_rate() > 0.0  # loud one still collects

    def test_plan_ops_expose_no_mutable_statistics_attribute(self):
        plan = plan_for(_tiny_vgg())
        for op in plan.ops:
            assert not hasattr(op, "collect_statistics")


class TestStemCache:
    def _rows(self, value: float):
        return (np.full((4, 3, 3), value, dtype=np.float32),)

    def test_hit_miss_accounting_and_lru_eviction(self):
        cache = StemCache(capacity=2)
        assert cache.lookup(b"a") is None
        cache.store(b"a", self._rows(1.0))
        cache.store(b"b", self._rows(2.0))
        assert cache.lookup(b"a") is not None  # refreshes a's recency
        cache.store(b"c", self._rows(3.0))    # evicts b (LRU)
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"a") is not None
        assert cache.lookup(b"c") is not None
        assert len(cache) == 2
        assert cache.hits == 3 and cache.misses == 2

    def test_clear_resets_entries_and_counters(self):
        cache = StemCache()
        cache.store(b"k", self._rows(1.0))
        cache.lookup(b"k")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StemCache(capacity=0)

    def test_store_under_stale_signature_is_dropped(self):
        """Rows computed under old weights must not land after a concurrent
        reload flushed the cache: store_many re-checks the signature the
        rows were computed under inside the lock."""
        cache = StemCache()
        old_signature, new_signature = (object(),), (object(),)
        cache.validate(old_signature)
        cache.store_many([(b"k", self._rows(1.0))], signature=old_signature)
        assert len(cache) == 1
        cache.validate(new_signature)  # the reload, from another worker
        assert len(cache) == 0
        cache.store_many([(b"stale", self._rows(2.0))], signature=old_signature)
        assert len(cache) == 0  # dropped, never served
        cache.store_many([(b"fresh", self._rows(3.0))], signature=new_signature)
        assert len(cache) == 1


requires_stem_memo = pytest.mark.skipif(
    os.environ.get("REPRO_STEM_CACHE_CAPACITY", "").strip() == "0",
    reason="stem memo disabled via REPRO_STEM_CACHE_CAPACITY=0",
)


@requires_stem_memo
class TestKeyedStemMemo:
    def _setup(self):
        model = _tiny_vgg(encoder=EventFrameEncoder())
        executor = executor_for(model, use_runtime=True)
        assert executor.memo_enabled and not executor.stem_enabled
        rng = np.random.default_rng(9)
        frames = rng.random((6, 3, 8, 8)).astype(np.float32)
        keys = [frames[i].tobytes() for i in range(frames.shape[0])]
        return model, executor, frames, keys

    def test_mixed_hit_miss_assembly_is_bitwise(self):
        """Rows assembled from memo hits + a batched miss pass must equal an
        uncached full-width stem run, bit for bit."""
        model, executor, frames, keys = self._setup()
        reference = PlanExecutor(executor.plan)  # no memo at all
        expected_cold = reference.step(frames).copy()

        # Warm the memo with a subset (rows 0, 2, 4), fresh state after.
        executor.step(frames[[0, 2, 4]], stem_keys=[keys[i] for i in (0, 2, 4)])
        executor.reset_state()

        mixed = executor.step(frames, stem_keys=keys).copy()
        assert np.array_equal(mixed, expected_cold)
        memo = executor.stem_memo
        assert memo.hits == 3 and len(memo) == 6

    def test_fully_cached_batch_is_bitwise(self):
        model, executor, frames, keys = self._setup()
        reference = PlanExecutor(executor.plan)
        expected = reference.step(frames).copy()
        executor.step(frames, stem_keys=keys)
        executor.reset_state()
        replay = executor.step(frames, stem_keys=keys).copy()
        assert np.array_equal(replay, expected)

    def test_without_keys_memo_is_bypassed(self):
        model, executor, frames, keys = self._setup()
        executor.step(frames)  # no keys -> ordinary full stem run
        assert len(executor.stem_memo) == 0

    def test_key_length_mismatch_raises(self):
        model, executor, frames, keys = self._setup()
        with pytest.raises(ValueError, match="stem_keys"):
            executor.step(frames, stem_keys=keys[:2])

    def test_aligned_and_memo_modes_are_exclusive(self):
        model = _tiny_vgg()
        plan = plan_for(model)
        with pytest.raises(ValueError, match="mutually exclusive"):
            PlanExecutor(plan, stem_cache=True, stem_memo=plan.stem_cache)

    def test_memo_shared_across_executors_of_one_plan(self):
        model = _tiny_vgg(encoder=EventFrameEncoder())
        first = executor_for(model, use_runtime=True)
        second = executor_for(model, use_runtime=True)
        assert first.plan is second.plan
        assert first.stem_memo is second.stem_memo is first.plan.stem_cache

    def test_weight_replacement_flushes_memo(self):
        """Entries are functions of the stem weights: replacing a stem
        parameter (optimizer step / checkpoint load into a live model) must
        flush the memo, or replays would serve stale stem rows."""
        model, executor, frames, keys = self._setup()
        executor.step(frames, stem_keys=keys)
        assert len(executor.stem_memo) == 6

        conv1 = next(p for p in model.features.parameters())
        conv1.data = conv1.data * np.float32(1.5)
        executor.reset_state()
        updated = executor.step(frames, stem_keys=keys).copy()

        oracle_out = PlanExecutor(executor.plan).step(frames).copy()  # memo-free
        assert np.array_equal(updated, oracle_out)
        # Memo was flushed and refilled under the new signature, not reused.
        assert executor.stem_memo.hits == 0

    def test_capacity_env_knob(self, monkeypatch):
        from repro.runtime.plan import compile_network

        monkeypatch.setenv("REPRO_STEM_CACHE_CAPACITY", "0")
        disabled = compile_network(_tiny_vgg(encoder=EventFrameEncoder()))
        assert disabled.stem_cache is None
        monkeypatch.setenv("REPRO_STEM_CACHE_CAPACITY", "2")
        bounded = compile_network(_tiny_vgg(encoder=EventFrameEncoder()))
        assert bounded.stem_cache.capacity == 2
        monkeypatch.setenv("REPRO_STEM_CACHE_CAPACITY", "not-a-number")
        fallback = compile_network(_tiny_vgg(encoder=EventFrameEncoder()))
        assert fallback.stem_cache.capacity == 1024
