"""Unit tests for the shared-memory plan arena (same-process attach).

Cross-process behaviour (spawned replicas, crash recovery) is covered by
``tests/serve/test_replica.py``; these tests pin the arena mechanics that do
not need a second process: export/attach round trips are bitwise, skeletons
carry no weight bytes, views are read-only, refresh propagates exactly the
replaced slots and flips every identity-keyed cache, and the refcounted
lifecycle unlinks ``/dev/shm`` exactly once.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.autograd.dtypes import float64_enabled
from repro.runtime import executor_for, plan_for, run_cumulative_logits
from repro.runtime.arena import PlanArena, _constant_slots, attach_arena
from repro.snn import spiking_resnet, spiking_vgg
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10


def _model(seed=47, builder=spiking_vgg):
    seed_everything(seed)
    model = builder(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS,
    ).eval()
    model.reset_state()
    return model


def _inputs(batch=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


@pytest.fixture
def arena_model():
    model = _model()
    arena = PlanArena.export(model)
    yield arena, model
    if not arena.destroyed:
        arena.destroy()


def _shm_path(arena) -> str:
    return f"/dev/shm/{arena.spec.name}"


class TestExportAttach:
    def test_attached_model_is_bitwise_identical(self, arena_model):
        arena, model = arena_model
        attachment = attach_arena(arena.spec, arena.skeleton())
        clone = attachment.model
        xs = _inputs()
        reference = model.forward(xs, TIMESTEPS).cumulative_numpy()
        np.testing.assert_array_equal(
            clone.forward(xs, TIMESTEPS).cumulative_numpy(), reference
        )
        executor = executor_for(clone, True)
        assert executor is not None, "attached model must lower"
        np.testing.assert_array_equal(
            run_cumulative_logits(clone, executor, xs, TIMESTEPS), reference
        )
        attachment.close()

    def test_attached_constants_are_readonly_views(self, arena_model):
        arena, model = arena_model
        attachment = attach_arena(arena.spec, arena.skeleton())
        clone = attachment.model
        for name, parameter in clone.named_parameters():
            assert not parameter.data.flags.writeable, name
            assert not parameter.data.flags.owndata, name
        # The folded conv+norm caches must serve arena views too, not
        # recompute private per-process copies of every conv weight.  (No
        # folded slots exist under REPRO_FLOAT64=1 — the legacy escape
        # hatch disables folding, and the arena mirrors that.)
        folded_slots = [
            (kind, owner) for kind, owner, _ in _constant_slots(clone)
            if kind == "folded_weight"
        ]
        if not float64_enabled():
            assert folded_slots, "expected foldable conv+norm pairs in the model"
        for _, folded in folded_slots:
            weight, bias = folded.arrays()
            assert not weight.flags.writeable and not bias.flags.writeable
        attachment.close()

    def test_skeleton_carries_no_weight_bytes(self, arena_model):
        arena, model = arena_model
        skeleton = arena.skeleton()
        # A straight pickle embeds every float32 weight; the skeleton
        # tokenizes them away, so it must be drastically smaller than the
        # arena payload it references.
        full = len(pickle.dumps(model))
        assert len(skeleton) < full / 4
        assert len(skeleton) < arena.spec.size / 4

    def test_resnet_model_exports_too(self):
        model = _model(seed=11, builder=spiking_resnet)
        arena = PlanArena.export(model)
        try:
            attachment = attach_arena(arena.spec, arena.skeleton())
            xs = _inputs(batch=2, seed=5)
            np.testing.assert_array_equal(
                attachment.model.forward(xs, TIMESTEPS).cumulative_numpy(),
                model.forward(xs, TIMESTEPS).cumulative_numpy(),
            )
            attachment.close()
        finally:
            arena.destroy()


class TestRefresh:
    def test_refresh_propagates_reloaded_weights(self, arena_model):
        arena, model = arena_model
        attachment = attach_arena(arena.spec, arena.skeleton())
        clone = attachment.model
        xs = _inputs(seed=9)
        before = clone.forward(xs, TIMESTEPS).cumulative_numpy()

        donor = _model(seed=99)
        model.load_state_dict(donor.state_dict())
        assert not attachment.stale()
        changed = arena.refresh()
        assert changed > 0
        assert attachment.stale()
        attachment.reattach()
        assert not attachment.stale()

        reference = model.forward(xs, TIMESTEPS).cumulative_numpy()
        after = clone.forward(xs, TIMESTEPS).cumulative_numpy()
        np.testing.assert_array_equal(after, reference)
        assert not np.array_equal(after, before)
        # The fast path converges too: the reattach flipped every source
        # identity, so folded caches and plan constants refresh themselves.
        executor = executor_for(clone, True)
        np.testing.assert_array_equal(
            run_cumulative_logits(clone, executor, xs, TIMESTEPS), reference
        )
        attachment.close()

    def test_refresh_flips_the_active_generation(self, arena_model):
        arena, model = arena_model
        attachment = attach_arena(arena.spec, arena.skeleton())
        assert arena.spec.generation_stride > 0
        assert arena.active_generation == 0
        xs = _inputs(seed=13)

        model.load_state_dict(_model(seed=101).state_dict())
        assert arena.refresh() > 0
        assert arena.active_generation == 1
        attachment.reattach()
        assert attachment.generation == 1
        np.testing.assert_array_equal(
            attachment.model.forward(xs, TIMESTEPS).cumulative_numpy(),
            model.forward(xs, TIMESTEPS).cumulative_numpy(),
        )

        # A second reload flips back; the previously-active generation is
        # resynced in full even though it missed the intermediate flip.
        model.load_state_dict(_model(seed=103).state_dict())
        assert arena.refresh() > 0
        assert arena.active_generation == 0
        attachment.reattach()
        np.testing.assert_array_equal(
            attachment.model.forward(xs, TIMESTEPS).cumulative_numpy(),
            model.forward(xs, TIMESTEPS).cumulative_numpy(),
        )
        attachment.close()

    def test_refresh_never_writes_the_generation_replicas_read(self, arena_model):
        """The flip is transactional: a straggler still bound to the old
        generation keeps serving the OLD weights bit-for-bit until it
        rebinds — refresh never scribbles the generation replicas read."""
        arena, model = arena_model
        attachment = attach_arena(arena.spec, arena.skeleton())
        xs = _inputs(seed=17)
        before = attachment.model.forward(xs, TIMESTEPS).cumulative_numpy()
        model.load_state_dict(_model(seed=107).state_dict())
        assert arena.refresh() > 0
        assert attachment.stale()
        # No reattach: the old views must still serve the old generation.
        np.testing.assert_array_equal(
            attachment.model.forward(xs, TIMESTEPS).cumulative_numpy(), before
        )
        attachment.close()

    def test_refresh_without_reload_is_a_noop(self, arena_model):
        arena, model = arena_model
        version = arena.version
        assert arena.refresh() == 0
        assert arena.version == version

    def test_refresh_rejects_shape_changes_atomically(self, arena_model):
        """A rejected refresh must copy NOTHING and bump nothing — a
        half-updated segment with no version signal would leave replicas
        silently serving mixed weight generations."""
        arena, model = arena_model
        attachment = attach_arena(arena.spec, arena.skeleton())
        version = arena.version
        parameters = list(model.parameters())
        # A valid change on an early slot...
        parameters[0].data = parameters[0].data * np.float32(2.0)
        valid_value = parameters[0].data.copy()
        # ...and an invalid one on a later slot.
        bad = parameters[-1]
        bad.data = np.zeros((bad.data.shape[0] + 1,) + bad.data.shape[1:],
                            dtype=np.float32)
        with pytest.raises(ValueError, match="re-export"):
            arena.refresh()
        assert arena.version == version
        assert not attachment.stale()
        clone_first = next(iter(attachment.model.parameters()))
        assert not np.array_equal(clone_first.data, valid_value)
        attachment.close()


class TestLifecycle:
    def test_destroy_unlinks_after_last_release(self, arena_model):
        arena, model = arena_model
        path = _shm_path(arena)
        assert os.path.exists(path)
        arena.acquire()
        arena.acquire()
        arena.destroy()  # pending: two references still held
        assert os.path.exists(path)
        arena.release()
        assert os.path.exists(path)
        arena.release()
        assert not os.path.exists(path)
        assert arena.destroyed

    def test_destroy_with_no_references_unlinks_immediately(self, arena_model):
        arena, model = arena_model
        path = _shm_path(arena)
        arena.destroy()
        assert not os.path.exists(path)
        # Idempotent.
        arena.destroy()
        arena.release()

    def test_acquire_after_destroy_raises(self, arena_model):
        arena, model = arena_model
        arena.destroy()
        with pytest.raises(RuntimeError, match="destroyed"):
            arena.acquire()

    def test_dropped_arena_unlinks_at_gc(self):
        """An arena exported but never drained (a server constructed and
        discarded without start()) must not leak its segment."""
        import gc

        model = _model(seed=21)
        arena = PlanArena.export(model)
        path = _shm_path(arena)
        assert os.path.exists(path)
        del arena
        gc.collect()
        assert not os.path.exists(path)

    def test_skeleton_drops_gradients_without_touching_the_model(self):
        model = _model(seed=23)
        parameter = next(iter(model.parameters()))
        parameter.grad = np.ones_like(parameter.data)
        arena = PlanArena.export(model)
        try:
            baseline = len(arena.skeleton())
            assert parameter.grad is not None  # caller's model untouched
            attachment = attach_arena(arena.spec, arena.skeleton())
            clone_parameter = next(iter(attachment.model.parameters()))
            assert clone_parameter.grad is None  # dropped in transit
            # ...and dropped means dropped: the skeleton must not grow by
            # a weights-worth of gradient bytes.
            assert baseline < arena.spec.size / 4
            attachment.close()
        finally:
            arena.destroy()
