"""Unit tests for the compiled plan: lowering, caching, gating, state surgery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DynamicTimestepInference, EntropyExitPolicy
from repro.nn import Conv2d, Flatten, Linear, Sequential
from repro.nn.module import Module
from repro.runtime import (
    PlanExecutor,
    UnsupportedModuleError,
    compile_network,
    executor_for,
    plan_for,
    run_cumulative_logits,
    runtime_enabled,
)
from repro.runtime.plan import ConvOp, FoldedConvNormOp, LIFOp, LinearOp, NormOp
from repro.serve import InferenceEngine
from repro.snn import SpikingNetwork, spiking_resnet, spiking_vgg
from repro.snn.encoding import EventFrameEncoder, PoissonEncoder
from repro.snn.neurons import LIFNeuron
from repro.autograd import float64_enabled
from repro.utils import seed_everything

requires_default_policy = pytest.mark.skipif(
    float64_enabled(), reason="suite is running under REPRO_FLOAT64=1"
)


def _tiny_vgg():
    seed_everything(1)
    model = spiking_vgg("tiny", num_classes=5, input_size=8, default_timesteps=3)
    # Untrained kaiming conv outputs rarely cross the firing threshold, which
    # would make every state/logit comparison vacuously zero; boost the
    # feature weights so the network actually spikes.
    for module in model.features.modules():
        if isinstance(module, Conv2d):
            module.weight.data = module.weight.data * np.float32(4.0)
    return model.eval()


class _Opaque(Module):
    """A module the lowerer has never heard of."""

    def forward(self, x):
        return x * 2.0


class TestLowering:
    @requires_default_policy
    def test_vgg_op_sequence_and_stem(self):
        plan = compile_network(_tiny_vgg())
        kinds = [type(op).__name__ for op in plan.ops]
        # Block-level conv->norm pairs fold into single GEMM ops.
        assert kinds == [
            "FoldedConvNormOp", "LIFOp", "AvgPoolOp",
            "FoldedConvNormOp", "LIFOp", "AvgPoolOp",
            "FlattenOp", "LinearOp",
        ]
        # Everything before the first LIF is the cacheable stem: the folded
        # conv1+bn1 GEMM.
        assert plan.stem_len == 1
        assert isinstance(plan.ops[0], FoldedConvNormOp)
        assert isinstance(plan.ops[plan.stem_len], LIFOp)
        # Only the folded conv output crosses the stem boundary.
        assert plan.stem_registers == (plan.ops[0].dst,)
        assert isinstance(plan.ops[-1], LinearOp)
        assert plan.output_register == plan.ops[-1].dst
        assert plan.num_lif == 2
        assert "FoldedConvNormOp" in plan.describe()

    def test_vgg_unfused_lowering_under_float64_mode(self, monkeypatch):
        """The legacy escape hatch restores the seed's unfused op sequence."""
        monkeypatch.setenv("REPRO_FLOAT64", "1")
        plan = compile_network(_tiny_vgg())
        kinds = [type(op).__name__ for op in plan.ops]
        assert kinds == [
            "ConvOp", "NormOp", "LIFOp", "AvgPoolOp",
            "ConvOp", "NormOp", "LIFOp", "AvgPoolOp",
            "FlattenOp", "LinearOp",
        ]
        assert plan.stem_len == 2
        assert plan.float64_mode is True

    def test_plan_cache_recompiles_on_mode_flip(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOAT64", raising=False)
        model = _tiny_vgg()
        default_plan = plan_for(model)
        assert default_plan.float64_mode is False
        monkeypatch.setenv("REPRO_FLOAT64", "1")
        legacy_plan = plan_for(model)
        assert legacy_plan is not default_plan
        assert legacy_plan.float64_mode is True

    def test_resnet_residual_lowering(self):
        seed_everything(2)
        model = spiking_resnet("tiny", num_classes=5, input_size=8).eval()
        plan = compile_network(model)
        kinds = [type(op).__name__ for op in plan.ops]
        assert "AddOp" in kinds  # the residual sums survived lowering
        # tiny resnet: stem block + 2 residual blocks (each 2 LIF).
        assert plan.num_lif == 1 + 2 * 2

    def test_unsupported_module_raises(self):
        model = SpikingNetwork(
            Sequential(Conv2d(3, 4, 3, padding=1), _Opaque()),
            Sequential(Flatten(), Linear(4 * 8 * 8, 5)),
            default_timesteps=2,
        )
        with pytest.raises(UnsupportedModuleError):
            compile_network(model)
        # the convenience wrappers report "use the Tensor path" instead
        assert plan_for(model) is None
        assert executor_for(model) is None

    def test_plan_cache_returns_same_object(self):
        model = _tiny_vgg()
        assert plan_for(model) is plan_for(model)


class TestGating:
    def test_env_flag_disables_runtime(self, monkeypatch):
        model = _tiny_vgg()
        monkeypatch.setenv("REPRO_RUNTIME", "0")
        assert not runtime_enabled()
        assert executor_for(model) is None
        # explicit opt-in overrides the environment
        assert runtime_enabled(True)
        assert executor_for(model, use_runtime=True) is not None

    def test_stem_cache_requires_direct_encoder(self):
        model = _tiny_vgg()
        assert executor_for(model).stem_enabled
        seed_everything(1)
        event = spiking_vgg(
            "tiny", num_classes=5, input_size=8, default_timesteps=3,
            encoder=EventFrameEncoder(),
        ).eval()
        assert executor_for(event).stem_enabled is False
        seed_everything(1)
        poisson = spiking_vgg(
            "tiny", num_classes=5, input_size=8, default_timesteps=3,
            encoder=PoissonEncoder(seed=0),
        ).eval()
        assert executor_for(poisson).stem_enabled is False

    def test_training_mode_guard(self):
        model = _tiny_vgg()
        executor = executor_for(model)
        model.train()
        frame = np.zeros((2, 3, 8, 8), dtype=np.float32)
        with pytest.raises(RuntimeError, match="inference-only"):
            executor.step(frame)

    def test_infer_falls_back_for_unsupported_model(self):
        seed_everything(3)
        model = SpikingNetwork(
            Sequential(Conv2d(3, 4, 3, padding=1), _Opaque(), LIFNeuron()),
            Sequential(Flatten(), Linear(4 * 8 * 8, 5)),
            default_timesteps=2,
        ).eval()
        engine = DynamicTimestepInference(model, EntropyExitPolicy(0.9), max_timesteps=2)
        x = np.random.default_rng(0).random((4, 3, 8, 8)).astype(np.float32)
        result = engine.infer(x)  # silently uses the Tensor path
        assert result.predictions.shape == (4,)
        serve_engine = InferenceEngine(model, EntropyExitPolicy(0.9), max_timesteps=2)
        assert serve_engine.fast_path is False


class TestStateSurgery:
    def _executor_and_inputs(self):
        model = _tiny_vgg()
        executor = executor_for(model)
        x = np.random.default_rng(5).random((6, 3, 8, 8)).astype(np.float32)
        return model, executor, x

    def test_compact_matches_fresh_subset_stream(self):
        """Dropping rows mid-stream must equal never having had them at all."""
        model, executor, x = self._executor_and_inputs()
        keep = np.array([True, False, True, True, False, True])

        executor.reset_state()
        executor.step(x)
        executor.compact_rows(keep)
        logits_after_compact = executor.step(x[keep]).copy()

        solo = executor_for(model)
        solo.reset_state()
        solo.step(x[keep])
        logits_solo = solo.step(x[keep]).copy()
        assert np.array_equal(logits_after_compact, logits_solo)

    def test_extend_rows_matches_fresh_admission(self):
        """A spliced-in row behaves exactly like a batch-of-one fresh stream."""
        model, executor, x = self._executor_and_inputs()
        executor.reset_state()
        executor.step(x[:4])
        executor.extend_rows(2, frames=x[4:6])
        combined = executor.step(x).copy()

        solo = executor_for(model)
        solo.reset_state()
        fresh = solo.step(x[4:6]).copy()
        assert np.array_equal(combined[4:6], fresh)

    def test_extend_without_frames_invalidates_stem_but_stays_correct(self):
        model, executor, x = self._executor_and_inputs()
        executor.reset_state()
        executor.step(x[:4])
        executor.extend_rows(2)  # no frames: stem cache dropped, then rebuilt
        combined = executor.step(x).copy()

        reference = executor_for(model)
        reference.reset_state()
        reference.step(x[:4])
        reference.extend_rows(2, frames=x[4:6])
        expected = reference.step(x).copy()
        assert np.array_equal(combined, expected)

    def test_reset_rows_zeroes_membranes(self):
        model, executor, x = self._executor_and_inputs()
        executor.reset_state()
        executor.step(x)
        executor.reset_rows(np.array([0, 2]))
        for membrane in executor._membranes:
            assert membrane is not None
            assert np.all(membrane[0] == 0.0)
            assert np.all(membrane[2] == 0.0)

    def test_batch_rows_tracks_state_width(self):
        model, executor, x = self._executor_and_inputs()
        executor.reset_state()
        assert executor.batch_rows is None
        executor.step(x)
        assert executor.batch_rows == 6
        executor.compact_rows(np.array([True, True, False, False, False, False]))
        assert executor.batch_rows == 2


class TestOutputFreshness:
    def test_non_linear_head_logits_are_not_aliased(self):
        """A classifier whose last op reuses scratch (here a LIF head) must
        still hand back a fresh array: callers alias the logits as running
        sums across timesteps, and a reused buffer would be overwritten in
        place by the next step (regression test for exactly that bug)."""
        seed_everything(13)
        model = SpikingNetwork(
            Sequential(Conv2d(3, 6, 3, padding=1), LIFNeuron()),
            Sequential(Flatten(), Linear(6 * 8 * 8, 5), LIFNeuron()),
            default_timesteps=3,
        ).eval()
        for module in model.modules():
            if isinstance(module, Conv2d):
                module.weight.data = module.weight.data * np.float32(4.0)
        plan = plan_for(model)
        assert plan.output_needs_copy
        x = np.random.default_rng(3).random((4, 3, 8, 8)).astype(np.float32)
        from repro.autograd import no_grad
        with no_grad():
            reference = model.forward(x, 3).cumulative_numpy()
        executor = executor_for(model)
        fast = run_cumulative_logits(model, executor, x, 3)
        assert np.array_equal(reference, fast)
        # and two consecutive step() results must be distinct arrays
        executor.reset_state()
        first = executor.step(x)
        second = executor.step(x)
        assert first is not second
        assert not np.shares_memory(first, second)

    def test_linear_head_output_allocates(self):
        plan = plan_for(_tiny_vgg())
        assert plan.output_needs_copy is False


class TestPlanCacheLifetime:
    def test_cached_plan_does_not_pin_the_model(self):
        """plan_for caches in a WeakKeyDictionary; the plan must not hold a
        strong reference back to its key or no model is ever collected."""
        import gc
        import weakref

        model = _tiny_vgg()
        plan = plan_for(model)
        model_ref = weakref.ref(model)
        del model, plan
        gc.collect()
        assert model_ref() is None, "compiled plan kept the model alive"


class TestWeightLiveness:
    def test_plan_sees_updated_weights_and_stats(self):
        """Plans hold live parameter references: load_state_dict after
        compilation must be reflected without recompiling."""
        model = _tiny_vgg()
        plan = plan_for(model)
        executor = PlanExecutor(plan, stem_cache=False)
        x = np.random.default_rng(9).random((3, 3, 8, 8)).astype(np.float32)
        before = run_cumulative_logits(model, executor, x, 2).copy()
        assert np.any(before != 0.0)  # the network must actually spike

        state = model.state_dict()
        state["classifier.1.weight"] = state["classifier.1.weight"] * 2.0
        model.load_state_dict(state)
        after = run_cumulative_logits(model, executor, x, 2)
        assert not np.array_equal(before, after)

        from repro.autograd import no_grad
        with no_grad():
            reference = model.forward(x, 2).cumulative_numpy()
        assert np.array_equal(after, reference)
