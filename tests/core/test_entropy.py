"""Tests for softmax / normalized entropy (Eq. 6-7) and confidence scores."""

import numpy as np
import pytest

from repro.core import (
    normalized_entropy,
    prediction_confidence,
    prediction_margin,
    softmax_probabilities,
)


class TestSoftmax:
    def test_sums_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 8))
        probs = softmax_probabilities(logits)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_monotone_in_logits(self):
        probs = softmax_probabilities(np.array([1.0, 2.0, 3.0]))
        assert probs[2] > probs[1] > probs[0]

    def test_stable_for_extreme_logits(self):
        probs = softmax_probabilities(np.array([[1e4, -1e4]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_shift_invariance(self):
        logits = np.array([0.3, 1.2, -0.7])
        assert np.allclose(
            softmax_probabilities(logits), softmax_probabilities(logits + 100.0)
        )


class TestNormalizedEntropy:
    def test_uniform_distribution_has_entropy_one(self):
        for k in (2, 5, 10, 100):
            probs = np.full((1, k), 1.0 / k)
            assert normalized_entropy(probs)[0] == pytest.approx(1.0)

    def test_one_hot_has_entropy_zero(self):
        probs = np.zeros((1, 6))
        probs[0, 2] = 1.0
        assert normalized_entropy(probs)[0] == pytest.approx(0.0, abs=1e-9)

    def test_range_is_unit_interval(self):
        probs = softmax_probabilities(np.random.default_rng(1).normal(size=(50, 7)))
        entropy = normalized_entropy(probs)
        assert (entropy >= 0).all()
        assert (entropy <= 1.0 + 1e-9).all()

    def test_normalization_makes_entropy_comparable_across_k(self):
        # A "90% confident" prediction should have similar normalized entropy
        # regardless of the number of classes — that is the point of the
        # log K normalization in Eq. 7.
        for k in (10, 20, 100):
            probs = np.full(k, 0.1 / (k - 1))
            probs[0] = 0.9
            value = normalized_entropy(probs[None])[0]
            assert value < 0.5

    def test_sharper_distribution_has_lower_entropy(self):
        soft = softmax_probabilities(np.array([[1.0, 0.5, 0.0]]))
        sharp = softmax_probabilities(np.array([[10.0, 0.5, 0.0]]))
        assert normalized_entropy(sharp)[0] < normalized_entropy(soft)[0]

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            normalized_entropy(np.ones((3, 1)))

    def test_batched_shape(self):
        probs = softmax_probabilities(np.random.default_rng(2).normal(size=(4, 6, 10)))
        assert normalized_entropy(probs).shape == (4, 6)


class TestConfidenceAndMargin:
    def test_confidence_is_max_probability(self):
        probs = np.array([[0.7, 0.2, 0.1]])
        assert prediction_confidence(probs)[0] == pytest.approx(0.7)

    def test_margin_top1_minus_top2(self):
        probs = np.array([[0.7, 0.2, 0.1]])
        assert prediction_margin(probs)[0] == pytest.approx(0.5)

    def test_margin_zero_for_ties(self):
        probs = np.array([[0.5, 0.5, 0.0]])
        assert prediction_margin(probs)[0] == pytest.approx(0.0)

    def test_entropy_and_confidence_anticorrelated(self):
        probs = softmax_probabilities(np.random.default_rng(3).normal(size=(200, 10)) * 3)
        entropy = normalized_entropy(probs)
        confidence = prediction_confidence(probs)
        assert np.corrcoef(entropy, confidence)[0, 1] < -0.5
