"""Tests for the DT-SNN dynamic-timestep inference engine (Eq. 5, Eq. 8)."""

import numpy as np
import pytest

from repro.core import (
    DynamicTimestepInference,
    EntropyExitPolicy,
    StaticExitPolicy,
)
from repro.data import DataLoader


def make_cumulative_logits():
    """Hand-crafted (T=3, N=4, K=3) cumulative logits with known exit behaviour.

    Sample 0: confident from t=1  -> exits at 1.
    Sample 1: confident from t=2  -> exits at 2.
    Sample 2: confident only at 3 -> exits at 3.
    Sample 3: never confident     -> forced exit at 3.
    """
    flat = np.array([0.1, 0.0, 0.05])
    confident = np.array([8.0, 0.0, 0.0])
    logits = np.zeros((3, 4, 3))
    logits[:, 0] = confident
    logits[0, 1] = flat
    logits[1:, 1] = confident
    logits[0, 2] = flat
    logits[1, 2] = flat
    logits[2, 2] = confident
    logits[:, 3] = flat
    return logits


LABELS = np.array([0, 0, 0, 2])


class TestInferFromLogits:
    def test_exit_timesteps_match_construction(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert result.exit_timesteps.tolist() == [1, 2, 3, 3]

    def test_predictions_taken_at_exit_time(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert result.predictions[:3].tolist() == [0, 0, 0]

    def test_average_timesteps(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert result.average_timesteps == pytest.approx((1 + 2 + 3 + 3) / 4)

    def test_accuracy(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert result.accuracy() == pytest.approx(0.75)

    def test_histogram_and_fractions(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert result.timestep_histogram().tolist() == [1, 1, 2]
        assert result.timestep_fractions().sum() == pytest.approx(1.0)

    def test_static_policy_always_uses_full_horizon(self):
        engine = DynamicTimestepInference(policy=StaticExitPolicy(), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert (result.exit_timesteps == 3).all()

    def test_very_loose_threshold_exits_everything_at_one(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.9999), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert (result.exit_timesteps == 1).all()

    def test_max_timesteps_truncates_logits(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.0001), max_timesteps=2)
        result = engine.infer_from_logits(make_cumulative_logits(), LABELS)
        assert result.max_timesteps == 2
        assert result.exit_timesteps.max() <= 2

    def test_labels_optional(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        result = engine.infer_from_logits(make_cumulative_logits())
        with pytest.raises(ValueError):
            result.accuracy()

    def test_wrong_rank_rejected(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        with pytest.raises(ValueError):
            engine.infer_from_logits(np.zeros((3, 4)))

    def test_summary_keys(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        summary = engine.infer_from_logits(make_cumulative_logits(), LABELS).summary()
        assert {"average_timesteps", "accuracy", "fraction_exit_t1"} <= set(summary)

    def test_invalid_max_timesteps(self):
        with pytest.raises(ValueError):
            DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=0)

    def test_entropy_trajectories_shape(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        trajectories = engine.entropy_trajectories(make_cumulative_logits())
        assert trajectories.shape == (3, 4)


class TestSequentialInference:
    def test_matches_fast_path_on_trained_model(self, trained_model, tiny_dataset, cumulative_logits):
        _, test = tiny_dataset
        policy = EntropyExitPolicy(threshold=0.2)
        engine = DynamicTimestepInference(trained_model, policy=policy, max_timesteps=4)

        sequential = engine.infer(test.inputs, test.labels)
        fast = DynamicTimestepInference(policy=policy, max_timesteps=4).infer_from_logits(
            cumulative_logits["logits"], cumulative_logits["labels"]
        )
        assert np.array_equal(sequential.exit_timesteps, fast.exit_timesteps)
        assert np.array_equal(sequential.predictions, fast.predictions)

    def test_average_timestep_below_max_for_trained_model(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        engine = DynamicTimestepInference(
            trained_model, policy=EntropyExitPolicy(threshold=0.5), max_timesteps=4
        )
        result = engine.infer(test.inputs, test.labels)
        assert result.average_timesteps < 4.0

    def test_infer_loader_aggregates_all_samples(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        loader = DataLoader(test, batch_size=16, shuffle=False)
        engine = DynamicTimestepInference(
            trained_model, policy=EntropyExitPolicy(threshold=0.3), max_timesteps=4
        )
        result = engine.infer_loader(loader)
        assert result.num_samples == len(test)
        assert result.labels is not None

    def test_requires_model_for_sequential_path(self):
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=3)
        with pytest.raises(ValueError):
            engine.infer(np.zeros((1, 3, 8, 8), dtype=np.float32))


class TestCompactedSequentialPath:
    """The sequential path compacts to the undecided subset each timestep;
    results must stay identical to the full-batch fast path."""

    def test_compaction_matches_fast_path_bitwise(
        self, trained_model, tiny_dataset, cumulative_logits
    ):
        _, test = tiny_dataset
        for threshold in (0.05, 0.3, 0.7, 0.95):
            policy = EntropyExitPolicy(threshold=threshold)
            sequential = DynamicTimestepInference(
                trained_model, policy=policy, max_timesteps=4
            ).infer(test.inputs, test.labels)
            fast = DynamicTimestepInference(
                policy=EntropyExitPolicy(threshold=threshold), max_timesteps=4
            ).infer_from_logits(cumulative_logits["logits"], cumulative_logits["labels"])
            assert np.array_equal(sequential.exit_timesteps, fast.exit_timesteps)
            assert np.array_equal(sequential.predictions, fast.predictions)
            np.testing.assert_allclose(sequential.scores, fast.scores, rtol=1e-6, atol=1e-7)

    def test_exited_samples_cost_no_forward_work(self, trained_model, tiny_dataset):
        """Spike-statistics updates count neuron evaluations: with early exit
        the compacted path must do strictly less work than the full horizon."""
        _, test = tiny_dataset
        engine = DynamicTimestepInference(
            trained_model, policy=EntropyExitPolicy(threshold=0.9), max_timesteps=4
        )
        trained_model.reset_spike_statistics()
        result = engine.infer(test.inputs[:32])
        compacted_updates = sum(
            layer.total_neuron_updates for layer in trained_model.lif_layers()
        )
        trained_model.reset_spike_statistics()
        trained_model.predict(test.inputs[:32], timesteps=4)
        full_updates = sum(
            layer.total_neuron_updates for layer in trained_model.lif_layers()
        )
        assert result.average_timesteps < 4.0
        assert compacted_updates < full_updates
        # Work is proportional to the summed per-sample exit timesteps.
        expected_fraction = result.exit_timesteps.sum() / (32 * 4)
        assert compacted_updates / full_updates == pytest.approx(expected_fraction)

    def test_stochastic_encoder_keeps_full_batch_rng_semantics(self):
        """Poisson encoding draws from a shared RNG, so the sequential path
        must not compact (draw shapes would change); with aligned RNG state it
        must still match the fast path on the collected logits."""
        from repro.snn import PoissonEncoder, spiking_vgg
        from repro.utils import seed_everything

        seed_everything(3)
        rng = np.random.default_rng(8)
        inputs = rng.random((8, 3, 10, 10)).astype(np.float32)
        model = spiking_vgg(
            "tiny", num_classes=10, input_size=10, default_timesteps=4,
            encoder=PoissonEncoder(seed=42),
        )
        model.eval()  # same normalization statistics as the inference path
        logits = model.forward(inputs, 4).cumulative_numpy()
        for threshold in (0.9, 0.97, 0.999):
            model.encoder = PoissonEncoder(seed=42)  # replay identical draws
            sequential = DynamicTimestepInference(
                model, policy=EntropyExitPolicy(threshold), max_timesteps=4
            ).infer(inputs)
            fast = DynamicTimestepInference(
                policy=EntropyExitPolicy(threshold), max_timesteps=4
            ).infer_from_logits(logits)
            assert np.array_equal(sequential.exit_timesteps, fast.exit_timesteps)
            assert np.array_equal(sequential.predictions, fast.predictions)
