"""Tests for threshold sweeps and calibration."""

import numpy as np
import pytest

from repro.core import (
    ConfidenceExitPolicy,
    calibrate_threshold,
    default_threshold_grid,
    sweep_thresholds,
)
from repro.training import accuracy_from_logits


class TestGrid:
    def test_grid_monotone_and_bounded(self):
        grid = default_threshold_grid(20)
        assert len(grid) == 20
        assert (np.diff(grid) > 0).all()
        assert grid[0] > 0 and grid[-1] < 1.0

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            default_threshold_grid(1)


class TestSweep:
    def test_average_timesteps_monotone_in_threshold(self, cumulative_logits):
        grid = [0.01, 0.1, 0.3, 0.6, 0.9]
        points = sweep_thresholds(
            cumulative_logits["logits"], cumulative_logits["labels"], grid
        )
        averages = [p.average_timesteps for p in points]
        assert all(averages[i] >= averages[i + 1] - 1e-9 for i in range(len(averages) - 1))

    def test_every_point_reports_consistent_fractions(self, cumulative_logits):
        points = sweep_thresholds(
            cumulative_logits["logits"], cumulative_logits["labels"], [0.05, 0.5]
        )
        for point in points:
            assert point.timestep_fractions.sum() == pytest.approx(1.0)
            expected_avg = np.dot(
                np.arange(1, len(point.timestep_fractions) + 1), point.timestep_fractions
            )
            assert point.average_timesteps == pytest.approx(expected_avg)

    def test_as_dict_keys(self, cumulative_logits):
        point = sweep_thresholds(
            cumulative_logits["logits"], cumulative_logits["labels"], [0.2]
        )[0]
        row = point.as_dict()
        assert {"threshold", "accuracy", "average_timesteps", "fraction_t1"} <= set(row)

    def test_alternative_policy_class(self, cumulative_logits):
        points = sweep_thresholds(
            cumulative_logits["logits"],
            cumulative_logits["labels"],
            [0.5, 0.9],
            policy_cls=ConfidenceExitPolicy,
        )
        # For confidence policies a *higher* threshold is more conservative.
        assert points[0].average_timesteps <= points[1].average_timesteps + 1e-9


class TestCalibration:
    def test_calibrated_accuracy_meets_target(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        static_accuracy = accuracy_from_logits(logits[-1], labels)
        point = calibrate_threshold(logits, labels, tolerance=0.0)
        assert point.accuracy >= static_accuracy - 1e-9

    def test_calibrated_average_below_max(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        point = calibrate_threshold(logits, labels, tolerance=0.01)
        assert point.average_timesteps < logits.shape[0]

    def test_tolerance_relaxes_requirement(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        strict = calibrate_threshold(logits, labels, tolerance=0.0)
        loose = calibrate_threshold(logits, labels, tolerance=0.05)
        assert loose.average_timesteps <= strict.average_timesteps + 1e-9

    def test_explicit_target_accuracy(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        point = calibrate_threshold(logits, labels, target_accuracy=0.0)
        # Any threshold satisfies accuracy >= 0, so the most aggressive wins.
        assert point.average_timesteps == pytest.approx(1.0)

    def test_unreachable_target_falls_back_to_most_conservative(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        grid = [0.3, 0.6, 0.9]
        point = calibrate_threshold(
            logits, labels, target_accuracy=1.01, thresholds=grid
        )
        assert point.threshold == pytest.approx(min(grid))
