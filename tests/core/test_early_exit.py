"""Tests for the ANN early-exit baseline (Sec. III-A(c) comparison)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import EarlyExitANN, EarlyExitInference, EntropyExitPolicy, build_early_exit_ann
from repro.data import DataLoader, make_cifar10_like
from repro.nn import Linear, Sequential, Flatten
from repro.training import SGD


@pytest.fixture(scope="module")
def ann():
    from repro.utils import seed_everything

    seed_everything(31)
    return build_early_exit_ann(num_classes=10, input_size=16, widths=(8, 16, 24))


class TestConstruction:
    def test_number_of_exits(self, ann):
        assert ann.num_exits == 3

    def test_forward_returns_one_logit_set_per_exit(self, ann):
        x = np.random.default_rng(0).random((2, 3, 16, 16)).astype(np.float32)
        outputs = ann.forward(x)
        assert len(outputs) == 3
        assert all(o.shape == (2, 10) for o in outputs)

    def test_mismatched_blocks_exits_rejected(self):
        with pytest.raises(ValueError):
            EarlyExitANN([Sequential(Flatten())], [])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EarlyExitANN([], [])

    def test_exit_parameter_overhead_positive(self, ann):
        overhead = ann.exit_parameter_overhead()
        assert 0.0 < overhead < 1.0


class TestTrainingAndInference:
    def test_joint_loss_differentiable(self, ann):
        x = np.random.default_rng(1).random((4, 3, 16, 16)).astype(np.float32)
        labels = np.array([0, 1, 2, 3])
        loss = ann.loss(x, labels)
        loss.backward()
        assert any(p.grad is not None for p in ann.parameters())

    def test_loss_decreases_with_training(self):
        from repro.utils import seed_everything

        seed_everything(32)
        ann = build_early_exit_ann(num_classes=4, input_size=8, widths=(8, 12))
        dataset = make_cifar10_like(num_samples=60, image_size=8, seed=17)
        labels = dataset.labels % 4
        optimizer = SGD(ann.parameters(), lr=0.05, momentum=0.9, weight_decay=0.0)
        first_loss = None
        last_loss = None
        for _ in range(8):
            optimizer.zero_grad()
            loss = ann.loss(dataset.inputs, labels)
            loss.backward()
            optimizer.step()
            last_loss = float(loss.data)
            if first_loss is None:
                first_loss = last_loss
        assert last_loss < first_loss

    def test_inference_exit_indices_in_range(self, ann):
        inference = EarlyExitInference(ann, EntropyExitPolicy(threshold=0.5))
        x = np.random.default_rng(2).random((6, 3, 16, 16)).astype(np.float32)
        result = inference.infer(x, labels=np.zeros(6, dtype=np.int64))
        assert result.exit_timesteps.min() >= 1
        assert result.exit_timesteps.max() <= 3
        assert result.policy_name.startswith("ann-early-exit")

    def test_loose_threshold_exits_at_first_branch(self, ann):
        inference = EarlyExitInference(ann, EntropyExitPolicy(threshold=0.999))
        x = np.random.default_rng(3).random((4, 3, 16, 16)).astype(np.float32)
        result = inference.infer(x)
        assert (result.exit_timesteps == 1).all()

    def test_infer_loader(self, ann):
        dataset = make_cifar10_like(num_samples=24, image_size=16, seed=5)
        loader = DataLoader(dataset, batch_size=8, shuffle=False)
        result = EarlyExitInference(ann, EntropyExitPolicy(0.4)).infer_loader(loader)
        assert result.num_samples == 24
