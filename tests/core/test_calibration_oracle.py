"""Tests for confidence calibration (temperature scaling, ECE) and the oracle exit bound."""

import numpy as np
import pytest

from repro.core import (
    DynamicTimestepInference,
    EntropyExitPolicy,
    TemperatureScaler,
    exit_policy_efficiency,
    expected_calibration_error,
    normalized_entropy,
    oracle_exit_result,
    reliability_curve,
    softmax_probabilities,
)


def make_overconfident_logits(n=400, k=5, accuracy=0.7, scale=8.0, seed=0):
    """Logits that are confidently right for `accuracy` of samples, confidently wrong otherwise."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, k, size=n)
    logits = rng.normal(0, 0.1, size=(n, k))
    correct = rng.random(n) < accuracy
    for index in range(n):
        target = labels[index] if correct[index] else (labels[index] + 1) % k
        logits[index, target] += scale
    return logits, labels


class TestReliabilityAndECE:
    def test_perfectly_calibrated_has_low_ece(self):
        rng = np.random.default_rng(1)
        n, k = 4000, 2
        confidence = rng.uniform(0.5, 1.0, size=n)
        labels = np.zeros(n, dtype=np.int64)
        correct = rng.random(n) < confidence
        probs = np.stack([np.where(correct, confidence, 1 - confidence),
                          np.where(correct, 1 - confidence, confidence)], axis=1)
        # predictions equal class 0 when correct; ECE should be small.
        assert expected_calibration_error(probs, labels) < 0.05

    def test_overconfident_model_has_high_ece(self):
        logits, labels = make_overconfident_logits(accuracy=0.6, scale=12.0)
        probs = softmax_probabilities(logits)
        assert expected_calibration_error(probs, labels) > 0.3

    def test_reliability_curve_counts_sum_to_n(self):
        logits, labels = make_overconfident_logits(n=300)
        curve = reliability_curve(softmax_probabilities(logits), labels, num_bins=12)
        assert curve["count"].sum() == 300
        assert curve["bin_edges"].shape == (13,)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones((3, 2, 2)), np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            reliability_curve(np.ones((3, 2)), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            reliability_curve(np.ones((3, 2)), np.zeros(3, dtype=np.int64), num_bins=0)


class TestTemperatureScaler:
    def test_fit_reduces_ece_for_overconfident_model(self):
        logits, labels = make_overconfident_logits(accuracy=0.65, scale=10.0)
        before = expected_calibration_error(softmax_probabilities(logits), labels)
        scaler = TemperatureScaler.fit(logits, labels)
        after = expected_calibration_error(scaler.probabilities(logits), labels)
        assert scaler.temperature > 1.0  # overconfident -> needs softening
        assert after < before

    def test_fit_recovers_known_temperature(self):
        rng = np.random.default_rng(2)
        n, k, true_temperature = 3000, 6, 3.0
        clean = rng.normal(0, 2.0, size=(n, k))
        probs = softmax_probabilities(clean)
        labels = np.array([rng.choice(k, p=p) for p in probs])
        scaler = TemperatureScaler.fit(clean * true_temperature, labels)
        assert scaler.temperature == pytest.approx(true_temperature, rel=0.25)

    def test_temperature_does_not_change_predictions(self):
        logits, _ = make_overconfident_logits()
        scaler = TemperatureScaler(temperature=4.0)
        assert np.array_equal(
            np.argmax(logits, axis=-1), np.argmax(scaler.transform(logits), axis=-1)
        )

    def test_higher_temperature_raises_entropy(self):
        logits, _ = make_overconfident_logits()
        entropy_raw = normalized_entropy(softmax_probabilities(logits)).mean()
        entropy_scaled = normalized_entropy(TemperatureScaler(5.0).probabilities(logits)).mean()
        assert entropy_scaled > entropy_raw

    def test_calibrate_cumulative_logits_shape(self):
        cumulative = np.random.default_rng(3).normal(size=(4, 10, 5))
        out = TemperatureScaler(2.0).calibrate_cumulative_logits(cumulative)
        assert out.shape == cumulative.shape
        assert np.allclose(out, cumulative / 2.0)

    def test_invalid_temperature_and_bounds(self):
        with pytest.raises(ValueError):
            TemperatureScaler(0.0).transform(np.ones((2, 2)))
        with pytest.raises(ValueError):
            TemperatureScaler.fit(np.ones((4, 3)), np.zeros(4, dtype=np.int64), bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            TemperatureScaler.fit(np.ones((4, 3)), np.zeros(3, dtype=np.int64))


class TestOracle:
    def _cumulative(self):
        # T=3, N=3, K=2; sample 0 correct from t=1, sample 1 from t=3,
        # sample 2 never correct.
        logits = np.zeros((3, 3, 2))
        labels = np.array([0, 0, 0])
        logits[:, 0, 0] = 5.0
        logits[0, 1, 1] = 5.0
        logits[1, 1, 1] = 5.0
        logits[2, 1, 0] = 5.0
        logits[:, 2, 1] = 5.0
        return logits, labels

    def test_oracle_exit_times(self):
        logits, labels = self._cumulative()
        result = oracle_exit_result(logits, labels)
        # Sample 2 is never correct, so the oracle exits it immediately at T=1.
        assert result.exit_timesteps.tolist() == [1, 3, 1]
        assert result.accuracy() == pytest.approx(2 / 3)

    def test_oracle_accuracy_upper_bounds_any_policy(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        oracle = oracle_exit_result(logits, labels)
        for threshold in (0.05, 0.2, 0.5, 0.9):
            engine = DynamicTimestepInference(
                policy=EntropyExitPolicy(threshold), max_timesteps=4
            )
            policy = engine.infer_from_logits(logits, labels)
            assert oracle.accuracy() >= policy.accuracy() - 1e-9
        # The oracle never exceeds the horizon and achieves at least the
        # full-horizon (static) accuracy.
        assert oracle.exit_timesteps.max() <= 4
        static_accuracy = float(np.mean(np.argmax(logits[-1], axis=-1) == labels))
        assert oracle.accuracy() >= static_accuracy - 1e-9

    def test_efficiency_metric(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        oracle = oracle_exit_result(logits, labels)
        engine = DynamicTimestepInference(policy=EntropyExitPolicy(0.3), max_timesteps=4)
        policy = engine.infer_from_logits(logits, labels)
        report = exit_policy_efficiency(policy, oracle)
        assert 0.0 <= report["timestep_saving_efficiency"] <= 1.5
        assert report["oracle_accuracy"] >= report["policy_accuracy"] - 1e-9

    def test_mismatched_horizons_rejected(self):
        logits, labels = self._cumulative()
        oracle = oracle_exit_result(logits, labels)
        other = oracle_exit_result(logits[:2], labels)
        with pytest.raises(ValueError):
            exit_policy_efficiency(other, oracle)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            oracle_exit_result(np.zeros((3, 4)), np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            oracle_exit_result(np.zeros((3, 4, 2)), np.zeros(5, dtype=np.int64))
