"""Tests for exit-time statistics and the easy/hard analysis."""

import numpy as np
import pytest

from repro.core import (
    DynamicInferenceResult,
    ascii_thumbnail,
    difficulty_by_exit_time,
    exit_distribution_table,
    stratify_by_exit_time,
    summarize_exit_groups,
)


@pytest.fixture
def result():
    return DynamicInferenceResult(
        exit_timesteps=np.array([1, 1, 2, 4, 4, 4]),
        predictions=np.array([0, 1, 1, 2, 0, 1]),
        labels=np.array([0, 1, 1, 2, 2, 2]),
        scores=np.array([0.05, 0.1, 0.2, 0.4, 0.9, 0.7]),
        max_timesteps=4,
    )


class TestDistribution:
    def test_exit_distribution_table(self, result):
        table = exit_distribution_table(result)
        assert table["T=1"] == pytest.approx(2 / 6)
        assert table["T=3"] == pytest.approx(0.0)
        assert sum(table.values()) == pytest.approx(1.0)

    def test_stratify_indices(self, result):
        groups = stratify_by_exit_time(result)
        assert groups[1].tolist() == [0, 1]
        assert groups[3].size == 0
        assert groups[4].tolist() == [3, 4, 5]

    def test_difficulty_increases_with_exit_time(self, result):
        difficulty = np.array([0.1, 0.2, 0.4, 0.8, 0.9, 0.7])
        means = difficulty_by_exit_time(result, difficulty)
        assert means[1] < means[4]
        assert np.isnan(means[3])

    def test_difficulty_length_mismatch(self, result):
        with pytest.raises(ValueError):
            difficulty_by_exit_time(result, np.zeros(3))


class TestGroupSummaries:
    def test_summaries_cover_all_timesteps(self, result):
        summaries = summarize_exit_groups(result)
        assert [s.timestep for s in summaries] == [1, 2, 3, 4]
        assert sum(s.count for s in summaries) == 6

    def test_group_accuracy(self, result):
        summaries = {s.timestep: s for s in summarize_exit_groups(result)}
        assert summaries[1].accuracy == pytest.approx(1.0)
        assert summaries[4].accuracy == pytest.approx(1 / 3)

    def test_mean_difficulty_attached(self, result):
        difficulty = np.array([0.0, 0.0, 0.5, 1.0, 1.0, 1.0])
        summaries = {s.timestep: s for s in summarize_exit_groups(result, difficulty)}
        assert summaries[1].mean_difficulty == pytest.approx(0.0)
        assert summaries[4].mean_difficulty == pytest.approx(1.0)

    def test_fractions_sum_to_one(self, result):
        assert sum(s.fraction for s in summarize_exit_groups(result)) == pytest.approx(1.0)


class TestAsciiThumbnail:
    def test_renders_rows(self):
        image = np.random.default_rng(0).random((3, 16, 16))
        text = ascii_thumbnail(image, width=16)
        lines = text.splitlines()
        assert len(lines) == 16
        assert all(len(line) == 16 for line in lines)

    def test_constant_image_renders_uniformly(self):
        text = ascii_thumbnail(np.ones((1, 8, 8)))
        assert len(set(text.replace("\n", ""))) == 1

    def test_accepts_2d_image(self):
        assert ascii_thumbnail(np.eye(8)).count("\n") == 7

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            ascii_thumbnail(np.zeros((2, 3, 4, 4)))
