"""Tests for exit policies (entropy, confidence, margin, static)."""

import numpy as np
import pytest

from repro.core import (
    EXIT_POLICIES,
    ConfidenceExitPolicy,
    EntropyExitPolicy,
    MarginExitPolicy,
    StaticExitPolicy,
    build_policy,
)

CONFIDENT = np.array([[10.0, 0.0, 0.0]])
UNCERTAIN = np.array([[0.1, 0.0, 0.05]])
BATCH = np.concatenate([CONFIDENT, UNCERTAIN], axis=0)


class TestEntropyPolicy:
    def test_exits_on_confident_logits(self):
        policy = EntropyExitPolicy(threshold=0.3)
        assert policy.should_exit(CONFIDENT)[0]

    def test_holds_on_uncertain_logits(self):
        policy = EntropyExitPolicy(threshold=0.3)
        assert not policy.should_exit(UNCERTAIN)[0]

    def test_batch_decisions_independent(self):
        decisions = EntropyExitPolicy(threshold=0.3).should_exit(BATCH)
        assert decisions.tolist() == [True, False]

    def test_larger_threshold_exits_more(self):
        loose = EntropyExitPolicy(threshold=0.99).should_exit(BATCH).sum()
        tight = EntropyExitPolicy(threshold=0.01).should_exit(BATCH).sum()
        assert loose >= tight

    def test_threshold_range_validated(self):
        with pytest.raises(ValueError):
            EntropyExitPolicy(threshold=1.5)
        with pytest.raises(ValueError):
            EntropyExitPolicy(threshold=-0.1)

    def test_score_is_normalized_entropy(self):
        scores = EntropyExitPolicy(threshold=0.5).score(BATCH)
        assert scores.shape == (2,)
        assert (scores >= 0).all() and (scores <= 1).all()
        assert scores[0] < scores[1]


class TestConfidencePolicy:
    def test_exits_when_confident(self):
        policy = ConfidenceExitPolicy(threshold=0.9)
        assert policy.should_exit(CONFIDENT)[0]
        assert not policy.should_exit(UNCERTAIN)[0]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ConfidenceExitPolicy(threshold=0.0)


class TestMarginPolicy:
    def test_exits_on_large_margin(self):
        policy = MarginExitPolicy(threshold=0.5)
        assert policy.should_exit(CONFIDENT)[0]
        assert not policy.should_exit(UNCERTAIN)[0]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            MarginExitPolicy(threshold=1.5)


class TestStaticPolicy:
    def test_never_exits(self):
        policy = StaticExitPolicy()
        assert not policy.should_exit(CONFIDENT).any()
        assert not policy.should_exit(BATCH).any()


class TestRegistry:
    @pytest.mark.parametrize("name", ["entropy", "confidence", "margin", "static"])
    def test_registered(self, name):
        assert name in EXIT_POLICIES

    def test_build_with_threshold(self):
        policy = build_policy("entropy", threshold=0.2)
        assert policy.threshold == pytest.approx(0.2)

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            build_policy("oracle")
