"""Tests for per-sample energy/latency/EDP accounting."""

import numpy as np
import pytest

from repro.core import DynamicInferenceResult, account_result, compare_to_static


class LinearCostModel:
    """E(T) = static + T * dynamic, D(T) = T * step (the paper's macroscopic law)."""

    def __init__(self, static=0.4, dynamic=0.6, step=1.0):
        self.static = static
        self.dynamic = dynamic
        self.step = step

    def energy(self, timesteps):
        return self.static + timesteps * self.dynamic

    def latency(self, timesteps):
        return timesteps * self.step


def make_result(exit_timesteps, labels_correct=True):
    exit_timesteps = np.asarray(exit_timesteps)
    n = exit_timesteps.shape[0]
    labels = np.zeros(n, dtype=np.int64)
    predictions = labels.copy() if labels_correct else 1 - labels
    return DynamicInferenceResult(
        exit_timesteps=exit_timesteps,
        predictions=predictions,
        labels=labels,
        scores=np.zeros(n),
        max_timesteps=int(exit_timesteps.max()),
    )


class TestAccountResult:
    def test_mean_energy_prices_each_sample_at_its_own_exit(self):
        model = LinearCostModel()
        report = account_result(make_result([1, 1, 4, 4]), model)
        expected = np.mean([model.energy(1), model.energy(1), model.energy(4), model.energy(4)])
        assert report.mean_energy == pytest.approx(expected)

    def test_edp_uses_per_sample_products(self):
        # E[T * E(T)] differs from E[T] * E(E(T)) when T varies — the paper's
        # Fig. 4 numbers depend on getting this right.
        model = LinearCostModel()
        report = account_result(make_result([1, 4]), model)
        per_sample = np.mean([model.energy(1) * model.latency(1), model.energy(4) * model.latency(4)])
        naive = report.mean_energy * report.mean_latency
        assert report.mean_edp == pytest.approx(per_sample)
        assert report.mean_edp > naive

    def test_total_energy(self):
        model = LinearCostModel()
        report = account_result(make_result([2, 2, 2]), model)
        assert report.total_energy == pytest.approx(3 * model.energy(2))

    def test_accuracy_propagated(self):
        report = account_result(make_result([1, 2], labels_correct=True), LinearCostModel())
        assert report.accuracy == pytest.approx(1.0)

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            account_result(make_result([]), LinearCostModel())

    def test_as_dict_contains_all_metrics(self):
        row = account_result(make_result([1, 3]), LinearCostModel()).as_dict()
        assert {"average_timesteps", "mean_energy", "mean_edp", "accuracy"} <= set(row)


class TestCompareToStatic:
    def test_paper_energy_ratio_reproduced(self):
        # Table II, CIFAR-10 VGG-16: average T = 1.46 out of 4 gives ~0.46x energy
        # under the E(T) = 0.4 + 0.6 T law.  Use a two-point mixture with that mean.
        model = LinearCostModel(static=0.4, dynamic=0.6)
        exits = np.array([1] * 127 + [2] * 23)  # mean 1.153... adjust to 1.46
        exits = np.array([1] * 254 + [4] * 146)  # mean = 2.168 -> wrong, build exact
        # Construct a distribution with mean exactly 1.46 over T in {1, 4}:
        # p*1 + (1-p)*4 = 1.46 -> p = 0.84666...
        n = 3000
        n1 = int(round(n * (4 - 1.46) / 3))
        exits = np.array([1] * n1 + [4] * (n - n1))
        report = account_result(make_result(exits), model)
        ratio = report.mean_energy / model.energy(4)
        assert ratio == pytest.approx(0.46, abs=0.01)

    def test_normalized_metrics_bounded_by_one_for_early_exits(self):
        model = LinearCostModel()
        report = account_result(make_result([1, 2, 3]), model)
        comparison = compare_to_static(report, model, static_timesteps=4)
        assert comparison["normalized_energy"] < 1.0
        assert comparison["normalized_latency"] < 1.0
        assert comparison["normalized_edp"] < 1.0
        assert comparison["edp_reduction_percent"] > 0.0

    def test_static_distribution_matches_baseline(self):
        model = LinearCostModel()
        report = account_result(make_result([4, 4, 4]), model)
        comparison = compare_to_static(report, model, static_timesteps=4)
        assert comparison["normalized_energy"] == pytest.approx(1.0)
        assert comparison["normalized_edp"] == pytest.approx(1.0)

    def test_accuracy_delta_reported(self):
        model = LinearCostModel()
        report = account_result(make_result([1, 1]), model)
        comparison = compare_to_static(report, model, 4, static_accuracy=0.9)
        assert comparison["accuracy_delta"] == pytest.approx(0.1)
