"""Randomized bitwise-equivalence sweeps: compiled-plan runtime vs Tensor oracle.

The fast path's contract is not "numerically close" — it is *bitwise
identical*: same logits, same exit timesteps, same predictions, same policy
scores, same spike statistics.  These tests sweep architectures (VGG /
ResNet, bn / tdbn / no norm, residual projections, hidden-LIF classifiers,
pooling variants), encoders (direct and event-frame), batch sizes and exit
policies, always building the model twice from the same seed and running one
copy through the runtime and one through the define-by-run oracle.

Nothing here needs a trained model: equivalence must hold for any weights,
so random initialization gives the cheapest possible coverage.  Classifier
weights are deliberately sharpened (scaled up) so the entropy/confidence
policies produce *mixed* exit timesteps — that is what exercises batch
compaction, state surgery and the stem cache under row removal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import DynamicTimestepInference
from repro.core.policies import (
    ConfidenceExitPolicy,
    EntropyExitPolicy,
    MarginExitPolicy,
    StaticExitPolicy,
)
from repro.nn import AdaptiveAvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, Sequential
from repro.nn.layers import Dropout, ReLU
from repro.runtime import executor_for, run_cumulative_logits
from repro.serve import InferenceEngine, Request, Response
from repro.snn import SpikingNetwork, spiking_resnet, spiking_vgg
from repro.snn.encoding import EventFrameEncoder, PoissonEncoder
from repro.snn.neurons import LIFNeuron
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10


def _sharpen(model: SpikingNetwork, factor: float = 25.0) -> SpikingNetwork:
    """Scale the classifier head so softmax confidence varies across samples.

    Untrained logits are nearly uniform (entropy ~ 1 for every sample), which
    would make every exit policy fire for all samples at the same timestep.
    Sharpening produces a per-sample spread — and therefore *mixed* exit
    timesteps, the case that exercises compaction.
    """
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(factor)
    return model


def _custom_stack() -> SpikingNetwork:
    """Coverage for the ops the standard builders never combine: MaxPool,
    AdaptiveAvgPool, ReLU, eval-mode Dropout and a hidden-LIF classifier."""
    features = Sequential(
        Conv2d(3, 12, 3, stride=1, padding=1),
        LIFNeuron(tau=0.7, v_threshold=0.8),
        MaxPool2d(2),
        Conv2d(12, 16, 3, stride=1, padding=1),
        ReLU(),
        LIFNeuron(tau=1.0, v_threshold=1.1, reset="soft"),
        AdaptiveAvgPool2d(1),
    )
    classifier = Sequential(
        Flatten(),
        Linear(16, 24),
        Dropout(0.5),
        LIFNeuron(tau=0.5),
        Linear(24, NUM_CLASSES),
    )
    return SpikingNetwork(features, classifier, default_timesteps=TIMESTEPS)


MODEL_BUILDERS = {
    "vgg-bn": lambda: spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE, default_timesteps=TIMESTEPS
    ),
    "vgg-tdbn": lambda: spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS, norm="tdbn",
    ),
    "vgg-nonorm": lambda: spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS, norm="none",
    ),
    "resnet-bn": lambda: spiking_resnet(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE, default_timesteps=TIMESTEPS
    ),
    "resnet-tdbn": lambda: spiking_resnet(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS, norm="tdbn",
    ),
    "vgg-event": lambda: spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS, encoder=EventFrameEncoder(),
    ),
    "custom-stack": _custom_stack,
}

# The Poisson encoder draws from its own seeded RNG, so two *fresh* models
# built from the same seed produce identical spike trains — but a second
# sweep through the same encoder object would not.  It therefore joins only
# the tests that rebuild the model per execution path (stem caching is
# disabled for it; the full batch is re-encoded every timestep).
STATEFUL_ENCODER_BUILDERS = {
    "vgg-poisson": lambda: spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS, encoder=PoissonEncoder(seed=99),
    ),
}
MODEL_BUILDERS.update(STATEFUL_ENCODER_BUILDERS)

POLICIES = {
    "entropy-tight": lambda: EntropyExitPolicy(0.35),
    "entropy-loose": lambda: EntropyExitPolicy(0.9),
    "confidence": lambda: ConfidenceExitPolicy(0.6),
    "margin": lambda: MarginExitPolicy(0.3),
    "static": lambda: StaticExitPolicy(),
}


def _build(name: str, seed: int) -> SpikingNetwork:
    """Deterministic fresh model: same seed → bitwise-identical weights."""
    seed_everything(seed)
    model = MODEL_BUILDERS[name]()
    model.eval()
    return _sharpen(model)


def _inputs(name: str, batch: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if name == "vgg-event":
        return rng.random((batch, TIMESTEPS + 1, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


# --------------------------------------------------------------------------- #
# 1. Accumulated logits: runtime horizon sweep vs Tensor forward
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "name", sorted(set(MODEL_BUILDERS) - set(STATEFUL_ENCODER_BUILDERS))
)
@pytest.mark.parametrize("batch", [1, 3, 8])
def test_cumulative_logits_bitwise(name, batch):
    model = _build(name, seed=11)
    x = _inputs(name, batch, seed=batch)
    with no_grad():
        reference = model.forward(x, TIMESTEPS).cumulative_numpy()
    executor = executor_for(model, use_runtime=True)
    assert executor is not None, f"{name} failed to lower into the fast path"
    fast = run_cumulative_logits(model, executor, x, TIMESTEPS)
    assert fast.dtype == reference.dtype
    assert np.array_equal(reference, fast)
    # A second pass through the same executor reuses every scratch buffer and
    # the stem cache; reuse must not perturb a single bit.
    again = run_cumulative_logits(model, executor, x, TIMESTEPS)
    assert np.array_equal(reference, again)


# --------------------------------------------------------------------------- #
# 2. Sequential early exit: infer() on both paths
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_infer_bitwise(name, policy_name):
    x = _inputs(name, batch=9, seed=7)

    results = {}
    statistics = {}
    for use_runtime in (True, False):
        model = _build(name, seed=23)
        model.reset_spike_statistics()
        engine = DynamicTimestepInference(
            model, POLICIES[policy_name](), max_timesteps=TIMESTEPS, use_runtime=use_runtime
        )
        results[use_runtime] = engine.infer(x)
        statistics[use_runtime] = model.spike_statistics()

    fast, reference = results[True], results[False]
    assert np.array_equal(fast.exit_timesteps, reference.exit_timesteps)
    assert np.array_equal(fast.predictions, reference.predictions)
    assert np.array_equal(fast.scores, reference.scores)
    # The runtime updates the per-layer spike counters with the exact same
    # float accumulation order, so the IMC activity model sees no difference.
    assert statistics[True] == statistics[False]


def test_sweep_produces_mixed_exits():
    """Guard the sweep's coverage: at least one config must compact mid-run.

    If sharpening ever stops producing a spread of exit timesteps, the
    compaction/stem-surgery branches above would silently stop being tested.
    """
    model = _build("vgg-bn", seed=23)
    engine = DynamicTimestepInference(
        model, EntropyExitPolicy(0.35), max_timesteps=TIMESTEPS
    )
    result = engine.infer(_inputs("vgg-bn", batch=9, seed=7))
    assert len(np.unique(result.exit_timesteps)) >= 2


# --------------------------------------------------------------------------- #
# 3. Serving engine: mid-horizon admissions + slot compaction on both paths
# --------------------------------------------------------------------------- #
def _drive_engine(engine: InferenceEngine, stream, admit_chunks):
    """Admit requests per the schedule, stepping between chunks; return
    {request_id: (prediction, exit_timestep, score)} after full drain."""
    outcomes = {}
    queue = list(stream)
    for chunk in admit_chunks:
        for _ in range(chunk):
            if queue:
                request = queue.pop(0)
                engine.admit(request, Response(), start_time=0.0)
        for sample in engine.step():
            outcomes[sample.request.request_id] = (
                sample.prediction, sample.exit_timestep, sample.score,
            )
    while not engine.idle or queue:
        if queue:
            request = queue.pop(0)
            engine.admit(request, Response(), start_time=0.0)
        for sample in engine.step():
            outcomes[sample.request.request_id] = (
                sample.prediction, sample.exit_timestep, sample.score,
            )
    return outcomes


@pytest.mark.parametrize("name", ["vgg-bn", "resnet-bn", "vgg-event", "custom-stack"])
def test_engine_mid_horizon_equivalence(name):
    inputs = _inputs(name, batch=12, seed=31)
    # Mid-horizon splicing: 5 requests up front, then 2 per step, then a
    # trailing drain — freed slots are refilled while others are mid-stream.
    admit_chunks = [5, 2, 2, 2, 1]

    outcomes = {}
    for use_runtime in (True, False):
        model = _build(name, seed=47)
        engine = InferenceEngine(
            model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS, use_runtime=use_runtime
        )
        assert engine.fast_path is use_runtime
        stream = [
            Request(request_id=i, inputs=inputs[i]) for i in range(inputs.shape[0])
        ]
        outcomes[use_runtime] = _drive_engine(engine, stream, admit_chunks)

    assert outcomes[True].keys() == outcomes[False].keys()
    assert len(outcomes[True]) == inputs.shape[0]
    for request_id in outcomes[True]:
        assert outcomes[True][request_id] == outcomes[False][request_id], (
            f"request {request_id} diverged between fast path and oracle"
        )


# --------------------------------------------------------------------------- #
# 4. Randomized fuzz: seeds x thresholds, single architecture, full pipeline
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [101, 202, 303, 404])
def test_randomized_threshold_fuzz(seed):
    rng = np.random.default_rng(seed)
    threshold = float(rng.uniform(0.05, 0.95))
    batch = int(rng.integers(1, 11))
    x = rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)

    results = {}
    for use_runtime in (True, False):
        model = _build("vgg-bn", seed=seed)
        engine = DynamicTimestepInference(
            model, EntropyExitPolicy(threshold), max_timesteps=TIMESTEPS,
            use_runtime=use_runtime,
        )
        results[use_runtime] = engine.infer(x)
    assert np.array_equal(results[True].exit_timesteps, results[False].exit_timesteps)
    assert np.array_equal(results[True].predictions, results[False].predictions)
    assert np.array_equal(results[True].scores, results[False].scores)
