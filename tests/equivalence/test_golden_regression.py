"""Golden regression: pinned predictions + exit histogram for a fixed stream.

The bitwise-equivalence suite proves the runtime matches the Tensor oracle
*today*; this test pins the absolute outputs of the whole serving pipeline —
trained model, entropy policy, continuous batcher, drain — for one
fixed-seed synthetic stream.  Any future PR that silently shifts the
numerics (a reordered reduction, a dtype change, an altered init, a
different training trajectory) trips these assertions even if it changes
both execution paths consistently, which pure A/B equivalence cannot see.

If a PR changes the numerics *deliberately* (e.g. collapsing the float64
scalar promotion to true float32), regenerate the constants with the
recipe in ``_run_golden_stream``'s docstring and say so in the PR.

The values are independent of batch slicing (per-sample trajectories are
batch-invariant) and of the execution path (fast vs oracle), which this test
re-verifies; they depend only on the trained weights and the stream.

History: the weak-scalar-float32 PR (dtype policy in docs/NUMERICS.md, plus
eval-time conv+norm folding) regenerated all constants from the new float32
reference.  The *discrete* goldens — predictions, exit timesteps, accuracy —
came out identical to the float64-era values (no argmax or threshold
comparison flipped on this stream), and the float-level logit goldens below
were pinned for the first time so future ulp-level drift cannot hide behind
discrete invariance again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import float64_enabled

from repro.core import EntropyExitPolicy
from repro.serve import LoadGenerator, Server, request_stream

pytestmark = pytest.mark.slow

GOLDEN_STREAM_SEED = 20260730
GOLDEN_NUM_REQUESTS = 48
GOLDEN_THRESHOLD = 0.35
GOLDEN_BATCH_WIDTH = 4

# fmt: off
GOLDEN_PREDICTIONS = [
    5, 9, 4, 7, 9, 2, 9, 0, 4, 6, 9, 7, 9, 7, 1, 2, 2, 7, 2, 3, 7, 9, 0, 0,
    6, 2, 5, 9, 3, 0, 3, 6, 3, 6, 1, 1, 7, 3, 2, 8, 6, 8, 3, 8, 4, 3, 2, 2,
]
GOLDEN_EXIT_TIMESTEPS = [
    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 4, 1, 4, 1, 4, 4, 1, 1, 1, 1, 1,
    1, 4, 1, 1, 4, 4, 4, 1, 1, 1, 1, 1, 1, 1, 4, 1, 1, 1, 1, 4, 1, 1, 4, 1,
]
GOLDEN_EXIT_HISTOGRAM = [37, 0, 0, 11]
GOLDEN_ACCURACY = 0.875

# Float-level goldens: the exact float32 cumulative logits of test sample 0
# at horizons t=1 and t=4 (decimal reprs round-trip float32 exactly).  These
# pin the continuous numerics — dtype policy, op order, conv+norm folding —
# that the discrete goldens above cannot see.
GOLDEN_LOGITS_DTYPE = "float32"
GOLDEN_LOGITS_T1_SAMPLE0 = [
    -1.686998963356018, -1.1473768949508667, 0.2981703281402588,
    -2.033003091812134, 0.7391027212142944, -0.13184887170791626,
    -1.3257182836532593, -0.9411124587059021, 4.853384971618652,
    1.8811240196228027,
]
GOLDEN_LOGITS_T4_SAMPLE0 = [
    -1.8941972255706787, -0.8473753929138184, 0.4013849198818207,
    -2.3340845108032227, 0.4539681375026703, 0.09898968040943146,
    -1.31131112575531, -1.4278303384780884, 5.441026210784912,
    2.442056894302368,
]
# fmt: on


def _run_golden_stream(model, dataset, use_runtime=None):
    """Serve the pinned stream; returns (predictions, exit_timesteps, accuracy).

    To regenerate the constants after an *intentional* numeric change: run
    this helper against the session ``trained_model`` fixture and paste the
    three lists (they are deterministic — same weights, same stream, and
    per-sample results do not depend on batch composition).
    """
    server = Server(
        model,
        EntropyExitPolicy(GOLDEN_THRESHOLD),
        max_timesteps=4,
        batch_width=GOLDEN_BATCH_WIDTH,
        queue_capacity=32,
        use_runtime=use_runtime,
    ).start()
    stream = list(request_stream(dataset, GOLDEN_NUM_REQUESTS, seed=GOLDEN_STREAM_SEED))
    report = LoadGenerator(server).run(iter(stream))
    server.shutdown(drain=True)
    assert report.completed == GOLDEN_NUM_REQUESTS
    by_id = sorted(report.results, key=lambda r: r.request_id)
    predictions = [r.prediction for r in by_id]
    exit_timesteps = [r.exit_timestep for r in by_id]
    return predictions, exit_timesteps, report.accuracy()


def test_golden_serve_stream_is_pinned(trained_model, tiny_dataset):
    _, test = tiny_dataset
    predictions, exit_timesteps, accuracy = _run_golden_stream(trained_model, test)

    assert predictions == GOLDEN_PREDICTIONS, (
        "serve predictions drifted from the golden values — if this PR changed "
        "numerics deliberately, regenerate the constants (see module docstring)"
    )
    assert exit_timesteps == GOLDEN_EXIT_TIMESTEPS, (
        "exit timesteps drifted from the golden values — the entropy trajectory "
        "of the trained model changed"
    )
    histogram = np.bincount(exit_timesteps, minlength=5)[1:].tolist()
    assert histogram == GOLDEN_EXIT_HISTOGRAM
    assert accuracy == pytest.approx(GOLDEN_ACCURACY, abs=0.0)


@pytest.mark.skipif(
    float64_enabled(),
    reason="float32 logit pins describe the default policy, not legacy numerics",
)
def test_golden_cumulative_logits_bitwise_pinned(trained_model, tiny_dataset):
    """The exact float32 logit bits are pinned, on both execution paths.

    Platform scope: bit-exact GEMM results depend on the BLAS backend's
    reduction order, so these pins are bound to the CI reference platform
    (x86-64 Linux, pip NumPy/OpenBLAS).  On a different backend (e.g. Apple
    Accelerate, MKL) a last-ulp mismatch here is expected and does not
    indicate a regression — regenerate locally to compare, and trust the
    platform-independent discrete goldens and path-vs-path equivalence
    sweeps instead.

    To regenerate after an intentional numeric change: run the trained_model
    fixture's forward on ``test.inputs[:2]`` over 4 timesteps and paste
    ``repr(float(v))`` of sample 0's cumulative logits at t=1 and t=4.
    """
    from repro.autograd import no_grad
    from repro.runtime import executor_for, run_cumulative_logits

    _, test = tiny_dataset
    model = trained_model
    was_training = model.training
    model.eval()
    try:
        x = test.inputs[:2]
        with no_grad():
            reference = model.forward(x, 4).cumulative_numpy()
        fast = run_cumulative_logits(model, executor_for(model, True), x, 4)
    finally:
        model.train(was_training)

    assert str(reference.dtype) == GOLDEN_LOGITS_DTYPE
    assert np.array_equal(reference, fast), "fast path diverged from the oracle"
    expected_t1 = np.array(GOLDEN_LOGITS_T1_SAMPLE0, dtype=np.float32)
    expected_t4 = np.array(GOLDEN_LOGITS_T4_SAMPLE0, dtype=np.float32)
    assert np.array_equal(reference[0, 0], expected_t1), (
        "t=1 cumulative logits drifted at the bit level — if this PR changed "
        "numerics deliberately, regenerate the constants (see docstring)"
    )
    assert np.array_equal(reference[3, 0], expected_t4), (
        "t=4 cumulative logits drifted at the bit level — if this PR changed "
        "numerics deliberately, regenerate the constants (see docstring)"
    )


def test_golden_stream_identical_on_reference_path(trained_model, tiny_dataset):
    """The pinned values hold on the Tensor oracle too — path-independence is
    part of what is being pinned."""
    _, test = tiny_dataset
    predictions, exit_timesteps, _ = _run_golden_stream(
        trained_model, test, use_runtime=False
    )
    assert predictions == GOLDEN_PREDICTIONS
    assert exit_timesteps == GOLDEN_EXIT_TIMESTEPS
