"""Golden regression: pinned predictions + exit histogram for a fixed stream.

The bitwise-equivalence suite proves the runtime matches the Tensor oracle
*today*; this test pins the absolute outputs of the whole serving pipeline —
trained model, entropy policy, continuous batcher, drain — for one
fixed-seed synthetic stream.  Any future PR that silently shifts the
numerics (a reordered reduction, a dtype change, an altered init, a
different training trajectory) trips these assertions even if it changes
both execution paths consistently, which pure A/B equivalence cannot see.

If a PR changes the numerics *deliberately* (e.g. collapsing the float64
scalar promotion to true float32), regenerate the constants with the
recipe in ``_run_golden_stream``'s docstring and say so in the PR.

The values are independent of batch slicing (per-sample trajectories are
batch-invariant) and of the execution path (fast vs oracle), which this test
re-verifies; they depend only on the trained weights and the stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EntropyExitPolicy
from repro.serve import LoadGenerator, Server, request_stream

pytestmark = pytest.mark.slow

GOLDEN_STREAM_SEED = 20260730
GOLDEN_NUM_REQUESTS = 48
GOLDEN_THRESHOLD = 0.35
GOLDEN_BATCH_WIDTH = 4

# fmt: off
GOLDEN_PREDICTIONS = [
    5, 9, 4, 7, 9, 2, 9, 0, 4, 6, 9, 7, 9, 7, 1, 2, 2, 7, 2, 3, 7, 9, 0, 0,
    6, 2, 5, 9, 3, 0, 3, 6, 3, 6, 1, 1, 7, 3, 2, 8, 6, 8, 3, 8, 4, 3, 2, 2,
]
GOLDEN_EXIT_TIMESTEPS = [
    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 4, 1, 4, 1, 4, 4, 1, 1, 1, 1, 1,
    1, 4, 1, 1, 4, 4, 4, 1, 1, 1, 1, 1, 1, 1, 4, 1, 1, 1, 1, 4, 1, 1, 4, 1,
]
GOLDEN_EXIT_HISTOGRAM = [37, 0, 0, 11]
GOLDEN_ACCURACY = 0.875
# fmt: on


def _run_golden_stream(model, dataset, use_runtime=None):
    """Serve the pinned stream; returns (predictions, exit_timesteps, accuracy).

    To regenerate the constants after an *intentional* numeric change: run
    this helper against the session ``trained_model`` fixture and paste the
    three lists (they are deterministic — same weights, same stream, and
    per-sample results do not depend on batch composition).
    """
    server = Server(
        model,
        EntropyExitPolicy(GOLDEN_THRESHOLD),
        max_timesteps=4,
        batch_width=GOLDEN_BATCH_WIDTH,
        queue_capacity=32,
        use_runtime=use_runtime,
    ).start()
    stream = list(request_stream(dataset, GOLDEN_NUM_REQUESTS, seed=GOLDEN_STREAM_SEED))
    report = LoadGenerator(server).run(iter(stream))
    server.shutdown(drain=True)
    assert report.completed == GOLDEN_NUM_REQUESTS
    by_id = sorted(report.results, key=lambda r: r.request_id)
    predictions = [r.prediction for r in by_id]
    exit_timesteps = [r.exit_timestep for r in by_id]
    return predictions, exit_timesteps, report.accuracy()


def test_golden_serve_stream_is_pinned(trained_model, tiny_dataset):
    _, test = tiny_dataset
    predictions, exit_timesteps, accuracy = _run_golden_stream(trained_model, test)

    assert predictions == GOLDEN_PREDICTIONS, (
        "serve predictions drifted from the golden values — if this PR changed "
        "numerics deliberately, regenerate the constants (see module docstring)"
    )
    assert exit_timesteps == GOLDEN_EXIT_TIMESTEPS, (
        "exit timesteps drifted from the golden values — the entropy trajectory "
        "of the trained model changed"
    )
    histogram = np.bincount(exit_timesteps, minlength=5)[1:].tolist()
    assert histogram == GOLDEN_EXIT_HISTOGRAM
    assert accuracy == pytest.approx(GOLDEN_ACCURACY, abs=0.0)


def test_golden_stream_identical_on_reference_path(trained_model, tiny_dataset):
    """The pinned values hold on the Tensor oracle too — path-independence is
    part of what is being pinned."""
    _, test = tiny_dataset
    predictions, exit_timesteps, _ = _run_golden_stream(
        trained_model, test, use_runtime=False
    )
    assert predictions == GOLDEN_PREDICTIONS
    assert exit_timesteps == GOLDEN_EXIT_TIMESTEPS
