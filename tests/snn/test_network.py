"""Tests for the temporally-unrolled SpikingNetwork and TemporalOutput."""

import numpy as np
import pytest

from repro.nn import Flatten, Linear, Sequential
from repro.snn import (
    ConvSpikeBlock,
    DirectEncoder,
    LIFNeuron,
    SpikingNetwork,
    TemporalOutput,
    cumulative_mean_logits,
)
from repro.autograd import Tensor


def build_minimal_network(timesteps=4, num_classes=5, channels=2, size=6):
    features = Sequential(ConvSpikeBlock(channels, 4, norm="bn"))
    classifier = Sequential(Flatten(), Linear(4 * size * size, num_classes))
    return SpikingNetwork(features, classifier, default_timesteps=timesteps)


class TestForward:
    def test_per_timestep_output_count(self):
        model = build_minimal_network()
        x = np.random.default_rng(0).random((3, 2, 6, 6)).astype(np.float32)
        output = model.forward(x, 4)
        assert output.num_timesteps == 4
        assert all(logits.shape == (3, 5) for logits in output.per_timestep)

    def test_default_timesteps_used(self):
        model = build_minimal_network(timesteps=3)
        output = model.forward(np.zeros((1, 2, 6, 6), dtype=np.float32))
        assert output.num_timesteps == 3

    def test_invalid_timesteps(self):
        model = build_minimal_network()
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 2, 6, 6), dtype=np.float32), 0)

    def test_state_reset_between_forwards(self):
        model = build_minimal_network()
        x = np.random.default_rng(1).random((2, 2, 6, 6)).astype(np.float32)
        first = model.forward(x, 3).final().data
        second = model.forward(x, 3).final().data
        assert np.allclose(first, second)

    def test_predict_returns_labels(self):
        model = build_minimal_network()
        predictions = model.predict(np.random.default_rng(2).random((4, 2, 6, 6)).astype(np.float32))
        assert predictions.shape == (4,)
        assert predictions.dtype == np.int64
        assert (predictions >= 0).all() and (predictions < 5).all()

    def test_predict_restores_training_mode(self):
        model = build_minimal_network()
        model.train()
        model.predict(np.zeros((1, 2, 6, 6), dtype=np.float32))
        assert model.training


class TestTemporalOutput:
    def test_cumulative_mean_matches_manual(self):
        logits = [Tensor(np.array([[float(t)]])) for t in range(1, 5)]
        cumulative = cumulative_mean_logits(logits)
        expected = [1.0, 1.5, 2.0, 2.5]
        assert [float(c.data[0, 0]) for c in cumulative] == pytest.approx(expected)

    def test_final_equals_mean_of_all(self):
        model = build_minimal_network()
        x = np.random.default_rng(3).random((2, 2, 6, 6)).astype(np.float32)
        output = model.forward(x, 4)
        manual = np.mean([o.data for o in output.per_timestep], axis=0)
        assert np.allclose(output.final().data, manual, atol=1e-6)

    def test_cumulative_numpy_shape(self):
        model = build_minimal_network()
        output = model.forward(np.zeros((2, 2, 6, 6), dtype=np.float32), 3)
        assert output.cumulative_numpy().shape == (3, 2, 5)
        assert output.per_timestep_numpy().shape == (3, 2, 5)

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            TemporalOutput().final()


class TestStateManagement:
    def test_lif_layers_enumeration(self):
        model = build_minimal_network()
        assert len(model.lif_layers()) == 1

    def test_spike_statistics_collected(self):
        model = build_minimal_network()
        model.reset_spike_statistics()
        model.forward(np.random.default_rng(4).random((2, 2, 6, 6)).astype(np.float32), 3)
        stats = model.spike_statistics()
        assert len(stats) == 1
        (entry,) = stats.values()
        assert entry["total_updates"] > 0
        assert 0.0 <= entry["mean_rate"] <= 1.0

    def test_mean_spike_rate_bounds(self):
        model = build_minimal_network()
        model.reset_spike_statistics()
        model.forward(np.random.default_rng(5).random((2, 2, 6, 6)).astype(np.float32), 2)
        assert 0.0 <= model.mean_spike_rate() <= 1.0

    def test_gradient_flows_through_time(self):
        model = build_minimal_network()
        x = np.random.default_rng(6).random((2, 2, 6, 6)).astype(np.float32)
        output = model.forward(x, 3)
        output.final().sum().backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "no gradients reached the parameters"
        assert any(np.abs(g).sum() > 0 for g in grads)


class TestPerSlotStateSurgery:
    """compact/extend/reset of membrane rows (the serving batcher's substrate)."""

    def _run_one_step(self, model, batch=4):
        from repro.autograd import no_grad
        x = np.random.default_rng(11).random((batch, 2, 6, 6)).astype(np.float32)
        model.eval()
        with no_grad():
            model.reset_state()
            frame = model.encoder(x, 0)
            model.classifier(model.features(frame))
        return x

    def test_compact_state_keeps_selected_rows(self):
        model = build_minimal_network()
        self._run_one_step(model, batch=4)
        lif = model.lif_layers()[0]
        before = lif.membrane.data.copy()
        keep = np.array([True, False, True, False])
        model.compact_state(keep)
        assert lif.membrane.shape[0] == 2
        assert np.array_equal(lif.membrane.data, before[keep])

    def test_extend_state_appends_zero_rows(self):
        model = build_minimal_network()
        self._run_one_step(model, batch=3)
        lif = model.lif_layers()[0]
        before = lif.membrane.data.copy()
        model.extend_state(2)
        assert lif.membrane.shape[0] == 5
        assert np.array_equal(lif.membrane.data[:3], before)
        assert np.allclose(lif.membrane.data[3:], 0.0)

    def test_reset_state_rows_zeroes_in_place(self):
        model = build_minimal_network()
        self._run_one_step(model, batch=3)
        lif = model.lif_layers()[0]
        before = lif.membrane.data.copy()
        model.reset_state_rows(np.array([1]))
        assert np.allclose(lif.membrane.data[1], 0.0)
        assert np.array_equal(lif.membrane.data[[0, 2]], before[[0, 2]])

    def test_zero_row_behaves_like_fresh_state(self):
        """A zeroed membrane row must produce the same spikes as a fresh start."""
        from repro.autograd import Tensor as T, no_grad
        lif = LIFNeuron(tau=0.5, v_threshold=1.0)
        current = np.random.default_rng(3).random((2, 4)).astype(np.float32) * 2.0
        with no_grad():
            lif.forward(T(current))
            lif.reset_state_rows(np.array([0, 1]))
            resumed = lif.forward(T(current)).data
            lif.reset_state()
            fresh = lif.forward(T(current)).data
        assert np.array_equal(resumed, fresh)

    def test_surgery_is_noop_before_first_forward(self):
        model = build_minimal_network()
        model.reset_state()
        model.compact_state(np.array([True]))
        model.extend_state(3)
        model.reset_state_rows(np.array([0]))
        assert all(layer.membrane is None for layer in model.lif_layers())

    def test_extend_state_rejects_negative(self):
        model = build_minimal_network()
        with pytest.raises(ValueError):
            model.extend_state(-1)
