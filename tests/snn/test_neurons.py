"""Tests for LIF/IF neuron dynamics: integration, firing, reset, BPTT."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.snn import IFNeuron, LIFNeuron, TriangularSurrogate


class TestMembraneDynamics:
    def test_subthreshold_no_spike(self):
        lif = LIFNeuron(tau=0.5, v_threshold=1.0)
        spikes = lif(Tensor(np.array([[0.4]])))
        assert spikes.data[0, 0] == 0.0
        assert lif.membrane.data[0, 0] == pytest.approx(0.4)

    def test_spike_when_exceeding_threshold(self):
        lif = LIFNeuron(tau=0.5, v_threshold=1.0)
        spikes = lif(Tensor(np.array([[1.5]])))
        assert spikes.data[0, 0] == 1.0

    def test_hard_reset_zeroes_membrane(self):
        lif = LIFNeuron(tau=0.5, v_threshold=1.0, reset="hard")
        lif(Tensor(np.array([[2.0]])))
        assert lif.membrane.data[0, 0] == pytest.approx(0.0)

    def test_soft_reset_subtracts_threshold(self):
        lif = LIFNeuron(tau=0.5, v_threshold=1.0, reset="soft")
        lif(Tensor(np.array([[1.8]])))
        assert lif.membrane.data[0, 0] == pytest.approx(0.8)

    def test_leak_applied_between_timesteps(self):
        # Eq. 2: u[t+1] = tau*u[t] + current
        lif = LIFNeuron(tau=0.5, v_threshold=10.0)
        lif(Tensor(np.array([[1.0]])))
        lif(Tensor(np.array([[1.0]])))
        assert lif.membrane.data[0, 0] == pytest.approx(1.5)

    def test_if_neuron_has_no_leak(self):
        neuron = IFNeuron(v_threshold=10.0)
        neuron(Tensor(np.array([[1.0]])))
        neuron(Tensor(np.array([[1.0]])))
        assert neuron.membrane.data[0, 0] == pytest.approx(2.0)

    def test_accumulation_until_firing(self):
        lif = LIFNeuron(tau=1.0, v_threshold=1.0)
        outputs = [lif(Tensor(np.array([[0.4]]))).data[0, 0] for _ in range(4)]
        # 0.4, 0.8 (no spike), 1.2 (spike), then reset and 0.4 again
        assert outputs == [0.0, 0.0, 1.0, 0.0]

    def test_reset_state_clears_membrane(self):
        lif = LIFNeuron()
        lif(Tensor(np.ones((2, 3))))
        lif.reset_state()
        assert lif.membrane is None

    def test_new_batch_shape_resets_automatically(self):
        lif = LIFNeuron()
        lif(Tensor(np.ones((2, 3))))
        spikes = lif(Tensor(np.ones((5, 3)) * 0.1))
        assert spikes.shape == (5, 3)

    def test_output_is_binary(self):
        lif = LIFNeuron()
        spikes = lif(Tensor(np.random.default_rng(0).normal(size=(8, 16)).astype(np.float32)))
        assert set(np.unique(spikes.data)).issubset({0.0, 1.0})


class TestValidation:
    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            LIFNeuron(tau=0.0)
        with pytest.raises(ValueError):
            LIFNeuron(tau=1.5)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LIFNeuron(v_threshold=0.0)

    def test_invalid_reset(self):
        with pytest.raises(ValueError):
            LIFNeuron(reset="bounce")


class TestSurrogateBackward:
    def test_gradient_uses_surrogate_not_zero(self):
        lif = LIFNeuron(tau=0.5, v_threshold=1.0, surrogate=TriangularSurrogate())
        current = Tensor(np.array([[0.9]]), requires_grad=True)
        spikes = lif(current)
        spikes.sum().backward()
        # Heaviside has zero derivative a.e.; the surrogate gives 0.9 here.
        assert current.grad[0, 0] == pytest.approx(0.9, abs=1e-6)

    def test_gradient_through_time(self):
        lif = LIFNeuron(tau=0.5, v_threshold=10.0)
        current = Tensor(np.array([[1.0]]), requires_grad=True)
        first = lif(current)
        second = lif(current)
        # Membrane after two steps = tau*current + current; gradient through
        # the surrogate at u=1.5 is max(0, 10 - |1.5-10|) = 1.5 per unit of u,
        # and du/dcurrent = tau + 1 = 1.5.
        second.sum().backward()
        assert current.grad is not None
        assert current.grad[0, 0] != 0.0


class TestSpikeStatistics:
    def test_counters_accumulate(self):
        lif = LIFNeuron()
        lif(Tensor(np.full((2, 4), 2.0)))
        lif(Tensor(np.zeros((2, 4))))
        assert lif.total_neuron_updates == 16
        assert lif.total_spikes == 8
        assert lif.last_spike_rate == 0.0

    def test_reset_statistics(self):
        lif = LIFNeuron()
        lif(Tensor(np.full((1, 4), 2.0)))
        lif.reset_statistics()
        assert lif.total_spikes == 0
        assert lif.total_neuron_updates == 0
