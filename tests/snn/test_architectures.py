"""Tests for the spiking VGG / ResNet builders and tdBN."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.snn import (
    ARCHITECTURES,
    RESNET_PRESETS,
    SpikingResidualBlock,
    TemporalBatchNorm2d,
    VGG_PRESETS,
    build_architecture,
    spiking_resnet,
    spiking_vgg,
)


class TestVGGBuilder:
    def test_tiny_preset_forward(self):
        model = spiking_vgg("tiny", num_classes=7, input_size=8, default_timesteps=2)
        output = model.forward(np.random.default_rng(0).random((2, 3, 8, 8)).astype(np.float32))
        assert output.final().shape == (2, 7)

    def test_width_multiplier_scales_parameters(self):
        narrow = spiking_vgg("tiny", input_size=8, width_multiplier=0.5)
        wide = spiking_vgg("tiny", input_size=8, width_multiplier=1.0)
        assert narrow.num_parameters() < wide.num_parameters()

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            spiking_vgg("vgg99")

    def test_vgg16_preset_has_thirteen_conv_blocks(self):
        conv_entries = [entry for entry in VGG_PRESETS["vgg16"] if entry != "M"]
        assert len(conv_entries) == 13  # VGG-16 = 13 conv + 3 FC (classifier here)

    def test_custom_channels_and_classes(self):
        model = spiking_vgg("vgg5", num_classes=4, in_channels=1, input_size=16)
        out = model.forward(np.zeros((1, 1, 16, 16), dtype=np.float32), 1)
        assert out.final().shape == (1, 4)

    def test_norm_options(self):
        for norm in ("bn", "tdbn", "none"):
            model = spiking_vgg("tiny", input_size=8, norm=norm)
            out = model.forward(np.random.default_rng(1).random((1, 3, 8, 8)).astype(np.float32), 1)
            assert np.isfinite(out.final().data).all()

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            spiking_vgg("tiny", input_size=8, norm="layernorm")


class TestResNetBuilder:
    def test_tiny_preset_forward(self):
        model = spiking_resnet("tiny", num_classes=6, input_size=8, default_timesteps=2)
        output = model.forward(np.random.default_rng(0).random((2, 3, 8, 8)).astype(np.float32))
        assert output.final().shape == (2, 6)

    def test_resnet19_preset_structure(self):
        assert RESNET_PRESETS["resnet19"]["blocks"] == (3, 3, 2)
        assert RESNET_PRESETS["resnet19"]["widths"] == (128, 256, 512)

    def test_residual_block_projection_when_shape_changes(self):
        block = SpikingResidualBlock(4, 8, stride=2)
        assert block._has_projection
        out = block(Tensor(np.random.default_rng(1).random((2, 4, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_residual_block_identity_shortcut(self):
        block = SpikingResidualBlock(4, 4, stride=1)
        assert not block._has_projection
        out = block(Tensor(np.zeros((1, 4, 6, 6), dtype=np.float32)))
        assert out.shape == (1, 4, 6, 6)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            spiking_resnet("resnet50")

    def test_odd_input_size_handled(self):
        model = spiking_resnet("tiny", input_size=10, num_classes=3)
        out = model.forward(np.zeros((1, 3, 10, 10), dtype=np.float32), 1)
        assert out.final().shape == (1, 3)


class TestRegistry:
    def test_families_registered(self):
        assert "vgg" in ARCHITECTURES
        assert "resnet" in ARCHITECTURES

    def test_build_architecture_dispatch(self):
        model = build_architecture("vgg", preset="tiny", input_size=8)
        assert model.model_name == "spiking-tiny"


class TestTemporalBatchNorm:
    def test_scaling_by_threshold(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(0.0, 2.0, size=(16, 3, 4, 4)).astype(np.float32))
        tdbn = TemporalBatchNorm2d(3, v_threshold=2.0, alpha=1.0)
        out = tdbn(x)
        # Normalized to zero mean, std = alpha * v_th.
        assert abs(float(out.data.mean())) < 0.05
        assert float(out.data.std()) == pytest.approx(2.0, rel=0.1)

    def test_eval_mode_uses_running_statistics(self):
        tdbn = TemporalBatchNorm2d(2, v_threshold=1.0)
        x = Tensor(np.random.default_rng(1).normal(size=(8, 2, 3, 3)).astype(np.float32))
        tdbn(x)  # training pass updates running stats
        tdbn.eval()
        out = tdbn(x)
        assert np.isfinite(out.data).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TemporalBatchNorm2d(0)
        with pytest.raises(ValueError):
            TemporalBatchNorm2d(3, v_threshold=-1.0)

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            TemporalBatchNorm2d(3)(Tensor(np.zeros((2, 3))))
