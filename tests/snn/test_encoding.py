"""Tests for input encoders (direct, Poisson, event-frame)."""

import numpy as np
import pytest

from repro.snn import DirectEncoder, EventFrameEncoder, PoissonEncoder, build_encoder


class TestDirectEncoder:
    def test_same_frame_every_timestep(self):
        encoder = DirectEncoder()
        x = np.random.default_rng(0).random((2, 3, 4, 4)).astype(np.float32)
        assert np.allclose(encoder(x, 0).data, encoder(x, 7).data)

    def test_preserves_values(self):
        encoder = DirectEncoder()
        x = np.full((1, 1, 2, 2), 0.37, dtype=np.float32)
        assert np.allclose(encoder(x, 0).data, 0.37)


class TestPoissonEncoder:
    def test_output_binary(self):
        encoder = PoissonEncoder(seed=0)
        frame = encoder(np.full((4, 3, 8, 8), 0.5), 0)
        assert set(np.unique(frame.data)).issubset({0.0, 1.0})

    def test_rate_matches_intensity(self):
        encoder = PoissonEncoder(seed=1)
        frames = [encoder(np.full((1, 1, 32, 32), 0.3), t).data for t in range(50)]
        assert np.mean(frames) == pytest.approx(0.3, abs=0.03)

    def test_different_timesteps_differ(self):
        encoder = PoissonEncoder(seed=2)
        x = np.full((1, 1, 16, 16), 0.5)
        assert not np.allclose(encoder(x, 0).data, encoder(x, 1).data)

    def test_clipping_out_of_range(self):
        encoder = PoissonEncoder(seed=3)
        frame = encoder(np.full((1, 1, 8, 8), 2.0), 0)
        assert np.all(frame.data == 1.0)

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            PoissonEncoder(gain=0.0)


class TestEventFrameEncoder:
    def test_selects_requested_frame(self):
        encoder = EventFrameEncoder()
        stream = np.zeros((2, 4, 1, 3, 3), dtype=np.float32)
        stream[:, 2] = 1.0
        assert np.allclose(encoder(stream, 2).data, 1.0)
        assert np.allclose(encoder(stream, 0).data, 0.0)

    def test_pads_with_last_frame(self):
        encoder = EventFrameEncoder()
        stream = np.zeros((1, 3, 1, 2, 2), dtype=np.float32)
        stream[:, -1] = 0.5
        assert np.allclose(encoder(stream, 9).data, 0.5)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            EventFrameEncoder()(np.zeros((2, 3, 4, 4)), 0)


class TestBuildEncoder:
    @pytest.mark.parametrize("name,cls", [("direct", DirectEncoder), ("poisson", PoissonEncoder), ("event", EventFrameEncoder)])
    def test_known_names(self, name, cls):
        assert isinstance(build_encoder(name), cls)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_encoder("fourier")
