"""Tests for surrogate gradient functions."""

import numpy as np
import pytest

from repro.snn import (
    SURROGATES,
    ArctanSurrogate,
    DspikeSurrogate,
    RectangularSurrogate,
    SigmoidSurrogate,
    TriangularSurrogate,
    build_surrogate,
)


class TestTriangular:
    def test_matches_equation_four(self):
        # Eq. 4: ds/du = max(0, V_th - |u - V_th|)
        surrogate = TriangularSurrogate()
        u = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 3.0])
        expected = np.maximum(0.0, 1.0 - np.abs(u - 1.0))
        assert np.allclose(surrogate(u, 1.0), expected)

    def test_peak_at_threshold(self):
        surrogate = TriangularSurrogate()
        u = np.linspace(0, 2, 101)
        grads = surrogate(u, 1.0)
        assert u[np.argmax(grads)] == pytest.approx(1.0)

    def test_gamma_scales(self):
        assert TriangularSurrogate(gamma=2.0)(np.array([1.0]), 1.0)[0] == pytest.approx(2.0)


class TestRectangular:
    def test_support_width(self):
        surrogate = RectangularSurrogate(width=1.0)
        assert surrogate(np.array([0.4]), 1.0)[0] == 0.0
        assert surrogate(np.array([0.6]), 1.0)[0] == pytest.approx(1.0)

    def test_area_is_one(self):
        surrogate = RectangularSurrogate(width=0.5)
        u = np.linspace(0, 2, 20001)
        spacing = u[1] - u[0]
        area = float(surrogate(u, 1.0).sum() * spacing)
        assert area == pytest.approx(1.0, rel=1e-2)


class TestDspike:
    def test_peak_at_threshold_and_normalized(self):
        surrogate = DspikeSurrogate(temperature=3.0, peak=1.0)
        assert surrogate(np.array([1.0]), 1.0)[0] == pytest.approx(1.0)

    def test_temperature_sharpens(self):
        wide = DspikeSurrogate(temperature=1.0)
        sharp = DspikeSurrogate(temperature=8.0)
        off_threshold = np.array([1.6])
        assert sharp(off_threshold, 1.0)[0] < wide(off_threshold, 1.0)[0]

    def test_symmetry_around_threshold(self):
        surrogate = DspikeSurrogate(temperature=3.0)
        assert surrogate(np.array([0.7]), 1.0)[0] == pytest.approx(
            surrogate(np.array([1.3]), 1.0)[0], rel=1e-6
        )


class TestOtherSurrogates:
    def test_sigmoid_peak_at_threshold(self):
        surrogate = SigmoidSurrogate(slope=4.0)
        u = np.linspace(0, 2, 101)
        grads = surrogate(u, 1.0)
        assert u[np.argmax(grads)] == pytest.approx(1.0)

    def test_atan_positive_everywhere(self):
        surrogate = ArctanSurrogate()
        assert (surrogate(np.linspace(-5, 5, 50), 1.0) > 0).all()


class TestRegistry:
    @pytest.mark.parametrize("name", ["rectangular", "triangular", "dspike", "sigmoid", "atan"])
    def test_all_registered(self, name):
        assert name in SURROGATES
        surrogate = build_surrogate(name)
        grads = surrogate(np.array([1.0]), 1.0)
        assert np.isfinite(grads).all()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_surrogate("does-not-exist")

    def test_build_with_kwargs(self):
        surrogate = build_surrogate("dspike", temperature=5.0)
        assert surrogate.temperature == 5.0
