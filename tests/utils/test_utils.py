"""Tests for utility modules: rng, registry, serialization, logging, validation."""

import numpy as np
import pytest

from repro.utils import (
    MetricLogger,
    Registry,
    check_in_choices,
    check_ndim,
    check_non_negative,
    check_positive,
    check_probability,
    global_rng,
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
    seed_everything,
    spawn_rng,
)


class TestRNG:
    def test_seed_everything_reproducible(self):
        seed_everything(12)
        a = global_rng().random(5)
        seed_everything(12)
        b = global_rng().random(5)
        assert np.allclose(a, b)

    def test_spawn_rng_independent_streams(self):
        seed_everything(12)
        a = spawn_rng()
        b = spawn_rng()
        assert not np.allclose(a.random(10), b.random(10))

    def test_spawn_rng_with_explicit_seed(self):
        assert np.allclose(spawn_rng(3).random(4), spawn_rng(3).random(4))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            seed_everything(-1)


class TestRegistry:
    def test_register_and_create(self):
        registry = Registry("thing")

        @registry.register("alpha")
        def make_alpha(value=1):
            return ("alpha", value)

        assert "alpha" in registry
        assert registry.create("alpha", value=2) == ("alpha", 2)

    def test_duplicate_name_rejected(self):
        registry = Registry("thing")
        registry.register("x", lambda: 1)
        with pytest.raises(KeyError):
            registry.register("x", lambda: 2)

    def test_lookup_is_case_insensitive(self):
        registry = Registry("thing")
        registry.register("Alpha", lambda: 1)
        assert registry.create("ALPHA") == 1

    def test_unknown_name_lists_available(self):
        registry = Registry("thing")
        registry.register("a", lambda: 1)
        with pytest.raises(KeyError, match="available"):
            registry.get("b")

    def test_names_sorted(self):
        registry = Registry("thing")
        registry.register("b", lambda: 1)
        registry.register("a", lambda: 1)
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2


class TestSerialization:
    def test_state_dict_roundtrip(self, tmp_path):
        state = {"w": np.random.default_rng(0).random((3, 3)), "b": np.zeros(3)}
        path = tmp_path / "model.npz"
        save_state_dict(path, state)
        loaded = load_state_dict(path)
        assert set(loaded) == {"w", "b"}
        assert np.allclose(loaded["w"], state["w"])

    def test_state_dict_suffix_added(self, tmp_path):
        path = tmp_path / "checkpoint"
        save_state_dict(path, {"x": np.ones(2)})
        loaded = load_state_dict(path)
        assert np.allclose(loaded["x"], 1.0)

    def test_json_roundtrip_with_numpy_values(self, tmp_path):
        payload = {"accuracy": np.float32(0.93), "series": np.arange(3), "nested": {"k": 1}}
        path = tmp_path / "result.json"
        save_json(path, payload)
        loaded = load_json(path)
        assert loaded["accuracy"] == pytest.approx(0.93, rel=1e-6)
        assert loaded["series"] == [0, 1, 2]
        assert loaded["nested"] == {"k": 1}


class TestMetricLogger:
    def test_series_recorded_in_order(self):
        logger = MetricLogger("test")
        logger.log(step=0, loss=1.0)
        logger.log(step=1, loss=0.5)
        assert logger.series("loss") == [1.0, 0.5]
        assert logger.latest("loss") == 0.5

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricLogger("test").latest("loss")

    def test_as_dict_copies(self):
        logger = MetricLogger("test")
        logger.log(loss=1.0)
        exported = logger.as_dict()
        exported["loss"].append(99.0)
        assert logger.series("loss") == [1.0]

    def test_elapsed_non_negative(self):
        assert MetricLogger("test").elapsed() >= 0.0


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.2)

    def test_check_in_choices(self):
        assert check_in_choices("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            check_in_choices("mode", "c", ("a", "b"))

    def test_check_ndim(self):
        array = check_ndim("x", [[1, 2]], 2)
        assert array.shape == (1, 2)
        with pytest.raises(ValueError):
            check_ndim("x", [1, 2], 2)
