"""End-to-end integration tests: the paper's qualitative claims on synthetic data.

These tests train (tiny) spiking networks and check the *relational* claims
that the benchmark harness later quantifies: accuracy grows with timesteps,
DT-SNN matches static accuracy at a lower average timestep count, the EDP
drops accordingly, easy inputs exit earlier than hard ones, and the Eq. 10
loss improves early-timestep accuracy.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.core import (
    DynamicTimestepInference,
    EntropyExitPolicy,
    account_result,
    calibrate_threshold,
    compare_to_static,
    difficulty_by_exit_time,
)
from repro.data import DataLoader, make_dvs_like, SyntheticDVSConfig, train_test_split
from repro.imc import IMCChip
from repro.snn import spiking_resnet, spiking_vgg
from repro.training import (
    Trainer,
    TrainingConfig,
    collect_cumulative_logits,
    evaluate_per_timestep_accuracy,
)
from repro.utils import seed_everything


class TestStaticSNNBehaviour:
    def test_accuracy_does_not_degrade_with_more_timesteps(self, trained_model, tiny_loaders):
        """Fig. 2: more timesteps -> at least as good accuracy (on average)."""
        _, test_loader = tiny_loaders
        accuracies = evaluate_per_timestep_accuracy(trained_model, test_loader, timesteps=4)
        assert accuracies[-1] >= accuracies[0] - 0.02
        assert accuracies[-1] > 0.5  # far above the 10% chance level

    def test_trained_model_beats_chance_by_wide_margin(self, trained_model, tiny_loaders):
        _, test_loader = tiny_loaders
        accuracies = evaluate_per_timestep_accuracy(trained_model, test_loader, timesteps=4)
        assert max(accuracies) > 0.6


class TestDTSNNClaims:
    def test_dtsnn_matches_static_accuracy_with_fewer_timesteps(self, cumulative_logits):
        """Table II: iso-accuracy at a fraction of the timesteps."""
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        point = calibrate_threshold(logits, labels, tolerance=0.0)
        static_accuracy = float(np.mean(np.argmax(logits[-1], axis=-1) == labels))
        assert point.accuracy >= static_accuracy - 1e-9
        assert point.average_timesteps < 0.75 * logits.shape[0]

    def test_majority_of_samples_exit_before_full_horizon(self, cumulative_logits):
        """Fig. 5 pie charts: T=1/T=2 dominate, T=3/T=4 are rare."""
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        point = calibrate_threshold(logits, labels, tolerance=0.01)
        fractions = point.timestep_fractions
        assert fractions[0] > 0.4            # most samples exit at T=1
        assert fractions[:2].sum() > 0.6     # or at least by T=2

    def test_edp_reduction_against_static_baseline(self, trained_model, tiny_dataset, cumulative_logits):
        """Fig. 4: DT-SNN reduces the energy-delay product substantially."""
        _, test = tiny_dataset
        chip = IMCChip.from_network(
            trained_model, test.inputs[:4], num_classes=10, trace_timesteps=2
        )
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        point = calibrate_threshold(logits, labels, tolerance=0.01)
        report = account_result(point.result, chip)
        comparison = compare_to_static(report, chip, static_timesteps=4)
        assert comparison["normalized_edp"] < 0.6
        assert comparison["edp_reduction_percent"] > 40.0
        assert comparison["normalized_energy"] < 0.8

    def test_easy_inputs_exit_earlier_than_hard_inputs(self, trained_model, tiny_dataset):
        """Fig. 8: exit time correlates with the generator's difficulty level."""
        _, test = tiny_dataset
        engine = DynamicTimestepInference(
            trained_model, policy=EntropyExitPolicy(threshold=0.25), max_timesteps=4
        )
        result = engine.infer(test.inputs, test.labels)
        means = difficulty_by_exit_time(result, test.metadata)
        valid = {t: m for t, m in means.items() if not np.isnan(m)}
        assert len(valid) >= 2
        first = valid[min(valid)]
        last = valid[max(valid)]
        assert last > first

    def test_threshold_controls_accuracy_efficiency_tradeoff(self, cumulative_logits):
        """Fig. 5 curve: lowering the threshold buys accuracy with timesteps."""
        from repro.core import sweep_thresholds

        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        points = sweep_thresholds(logits, labels, [0.02, 0.2, 0.8])
        averages = [p.average_timesteps for p in points]
        assert averages[0] >= averages[1] >= averages[2]
        # The most aggressive threshold loses at most a few points of accuracy
        # relative to the most conservative one on this easy dataset.
        assert points[2].accuracy >= points[0].accuracy - 0.25


class TestLossAblation:
    def test_per_timestep_loss_improves_first_timestep_accuracy(self, tiny_loaders):
        """Fig. 7: Eq. 10 lifts the T=1 accuracy compared to Eq. 9."""
        train_loader, test_loader = tiny_loaders
        results = {}
        for loss_name in ("final", "per_timestep"):
            seed_everything(99)  # identical initialization for both runs
            model = spiking_vgg("tiny", num_classes=10, input_size=10, default_timesteps=4)
            Trainer(
                model,
                TrainingConfig(epochs=4, timesteps=4, learning_rate=0.15, loss=loss_name),
            ).fit(train_loader)
            results[loss_name] = evaluate_per_timestep_accuracy(model, test_loader, timesteps=4)
        assert results["per_timestep"][0] >= results["final"][0] - 0.02


class TestDVSPipeline:
    def test_event_stream_training_and_dynamic_inference(self):
        """Table II last column: the DVS-style dataset runs through the same stack."""
        seed_everything(71)
        dataset = make_dvs_like(
            SyntheticDVSConfig(num_classes=4, num_samples=120, num_frames=6, image_size=10, seed=13)
        )
        train, test = train_test_split(dataset, 0.3, seed=1)
        from repro.snn import EventFrameEncoder

        model = spiking_vgg(
            "tiny",
            num_classes=4,
            in_channels=2,
            input_size=10,
            default_timesteps=6,
            encoder=EventFrameEncoder(),
        )
        trainer = Trainer(
            model, TrainingConfig(epochs=4, timesteps=6, learning_rate=0.1, loss="per_timestep")
        )
        result = trainer.fit(
            DataLoader(train, batch_size=28, seed=0),
            DataLoader(test, batch_size=36, shuffle=False),
        )
        assert result.final_eval_accuracy > 0.4  # chance is 0.25

        collected = collect_cumulative_logits(
            model, DataLoader(test, batch_size=36, shuffle=False), timesteps=6
        )
        point = calibrate_threshold(collected["logits"], collected["labels"], tolerance=0.02)
        assert point.average_timesteps < 6.0


class TestResNetPath:
    def test_spiking_resnet_trains_and_exits_dynamically(self, tiny_dataset):
        train, test = tiny_dataset
        seed_everything(82)
        model = spiking_resnet("tiny", num_classes=10, input_size=10, default_timesteps=3)
        trainer = Trainer(
            model, TrainingConfig(epochs=6, timesteps=3, learning_rate=0.1, loss="per_timestep")
        )
        trainer.fit(DataLoader(train, batch_size=32, seed=4))
        collected = collect_cumulative_logits(
            model, DataLoader(test, batch_size=64, shuffle=False), timesteps=3
        )
        accuracy = float(
            np.mean(np.argmax(collected["logits"][-1], axis=-1) == collected["labels"])
        )
        assert accuracy > 0.3
        point = calibrate_threshold(collected["logits"], collected["labels"], tolerance=0.02)
        assert point.average_timesteps <= 3.0
