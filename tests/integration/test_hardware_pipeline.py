"""Integration tests: trained SNN -> IMC chip -> energy/EDP/variation/throughput."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.core import (
    DynamicTimestepInference,
    EntropyExitPolicy,
    StaticExitPolicy,
    account_result,
    calibrate_threshold,
    compare_to_static,
)
from repro.imc import ENERGY_BREAKDOWN_TARGETS, IMCChip, with_device_variation
from repro.processors import DigitalProcessorModel, WallClockProfiler
from repro.training import collect_cumulative_logits, evaluate_accuracy
from repro.utils import save_state_dict, load_state_dict


@pytest.fixture(scope="module")
def chip(trained_model, tiny_dataset):
    _, test = tiny_dataset
    return IMCChip.from_network(trained_model, test.inputs[:4], num_classes=10, trace_timesteps=2)


class TestChipFromTrainedModel:
    def test_breakdown_matches_calibration_targets(self, chip):
        shares = chip.energy_breakdown_shares()
        normalizer = sum(ENERGY_BREAKDOWN_TARGETS.values())
        for component, target in ENERGY_BREAKDOWN_TARGETS.items():
            assert shares[component] == pytest.approx(target / normalizer, abs=1e-6)

    def test_energy_latency_curves_match_paper_shape(self, chip):
        energy = chip.normalized_energy_curve(8)
        latency = chip.normalized_latency_curve(8)
        assert energy[8] == pytest.approx(4.9, abs=0.35)
        assert latency[8] == pytest.approx(8.0, rel=0.02)

    def test_sigma_e_overhead_negligible(self, chip):
        assert chip.sigma_e_overhead() < 1e-3

    def test_static_snn_cost_equals_direct_chip_numbers(self, chip, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        static = DynamicTimestepInference(policy=StaticExitPolicy(), max_timesteps=4)
        report = account_result(static.infer_from_logits(logits, labels), chip)
        assert report.mean_energy == pytest.approx(chip.energy(4), rel=1e-9)
        assert report.mean_edp == pytest.approx(chip.edp(4), rel=1e-9)


class TestDeviceVariationEndToEnd:
    def test_variation_keeps_dtsnn_above_chance_and_below_clean(
        self, trained_model, tiny_loaders, cumulative_logits
    ):
        """Fig. 6(B): accuracy degrades gracefully under 20% variation."""
        _, test_loader = tiny_loaders
        clean_accuracy = evaluate_accuracy(trained_model, test_loader, timesteps=4)
        with with_device_variation(trained_model, sigma=0.2, seed=17):
            noisy = collect_cumulative_logits(trained_model, test_loader, timesteps=4)
            noisy_static = float(
                np.mean(np.argmax(noisy["logits"][-1], axis=-1) == noisy["labels"])
            )
            noisy_point = calibrate_threshold(noisy["logits"], noisy["labels"], tolerance=0.02)
        assert noisy_static <= clean_accuracy + 0.05
        assert noisy_static > 0.3
        # DT-SNN still removes redundant timesteps under variation.
        assert noisy_point.average_timesteps < 4.0

    def test_restoration_after_variation(self, trained_model, tiny_loaders):
        _, test_loader = tiny_loaders
        before = evaluate_accuracy(trained_model, test_loader, timesteps=2)
        with with_device_variation(trained_model, sigma=0.3, seed=23):
            pass
        after = evaluate_accuracy(trained_model, test_loader, timesteps=2)
        assert before == pytest.approx(after)


class TestThroughputEndToEnd:
    def test_dynamic_wallclock_faster_than_full_horizon(self, trained_model, tiny_dataset):
        """Table III shape: executing fewer timesteps raises measured throughput.

        Both measurements go through the same dynamic-inference engine so that
        the only difference is how many timesteps actually execute (at this
        tiny network size the Python-side entropy check is not negligible the
        way it is on a GPU, so comparing against the raw static loop would
        conflate engine overhead with timestep savings).
        """
        _, test = tiny_dataset
        profiler = WallClockProfiler(trained_model, max_timesteps=4)
        inputs = test.inputs[:10]
        # threshold=0 never exits early -> all 4 timesteps through the engine.
        full_horizon = profiler.measure_dynamic(inputs, threshold=0.0)
        dynamic = profiler.measure_dynamic(inputs, threshold=0.5)
        assert full_horizon.average_timesteps == pytest.approx(4.0)
        assert dynamic.average_timesteps < 4.0
        assert dynamic.images_per_second > full_horizon.images_per_second

    def test_analytic_model_consistent_with_exit_distribution(self, cumulative_logits):
        logits, labels = cumulative_logits["logits"], cumulative_logits["labels"]
        point = calibrate_threshold(logits, labels, tolerance=0.01)
        model = DigitalProcessorModel()
        dynamic_throughput = model.dynamic_throughput(point.result)
        assert model.throughput(4) < dynamic_throughput <= model.throughput(1)


class TestCheckpointRoundtrip:
    def test_save_load_preserves_predictions(self, trained_model, tiny_dataset, tmp_path):
        _, test = tiny_dataset
        inputs = test.inputs[:8]
        expected = trained_model.predict(inputs, timesteps=2)
        path = tmp_path / "dtsnn_checkpoint.npz"
        save_state_dict(path, trained_model.state_dict())

        from repro.snn import spiking_vgg
        from repro.utils import seed_everything

        seed_everything(1234)
        clone = spiking_vgg("tiny", num_classes=10, input_size=10, default_timesteps=4)
        clone.load_state_dict(load_state_dict(path))
        assert np.array_equal(clone.predict(inputs, timesteps=2), expected)
