"""Admission queue and future primitives: capacity, backpressure, close."""

import threading

import numpy as np
import pytest

from repro.serve import (
    AdmissionQueue,
    QueueClosedError,
    QueueFullError,
    Request,
    RequestResult,
    Response,
)


def make_item(request_id=0):
    return Request(request_id=request_id, inputs=np.zeros((3, 4, 4), dtype=np.float32)), Response()


class TestAdmissionQueue:
    def test_fifo_order(self):
        queue = AdmissionQueue(capacity=4)
        for i in range(3):
            queue.put(*make_item(i))
        assert [queue.get_nowait()[0].request_id for _ in range(3)] == [0, 1, 2]
        assert queue.get_nowait() is None

    def test_full_queue_raises_without_blocking(self):
        queue = AdmissionQueue(capacity=2)
        queue.put(*make_item(0))
        queue.put(*make_item(1))
        with pytest.raises(QueueFullError):
            queue.put(*make_item(2), block=False)
        assert queue.depth() == 2

    def test_full_queue_blocking_times_out(self):
        queue = AdmissionQueue(capacity=1)
        queue.put(*make_item(0))
        with pytest.raises(QueueFullError):
            queue.put(*make_item(1), block=True, timeout=0.02)

    def test_blocked_put_proceeds_when_slot_frees(self):
        queue = AdmissionQueue(capacity=1)
        queue.put(*make_item(0))
        done = threading.Event()

        def submit():
            queue.put(*make_item(1), block=True, timeout=5.0)
            done.set()

        thread = threading.Thread(target=submit, daemon=True)
        thread.start()
        assert queue.get(timeout=1.0)[0].request_id == 0
        assert done.wait(1.0)
        assert queue.get(timeout=1.0)[0].request_id == 1

    def test_arrival_time_stamped_at_admission(self):
        ticks = iter([10.0, 20.0])
        queue = AdmissionQueue(capacity=2, clock=lambda: next(ticks))
        request, response = make_item()
        queue.put(request, response)
        assert request.arrival_time == 10.0

    def test_closed_queue_rejects_submissions_but_drains(self):
        queue = AdmissionQueue(capacity=4)
        queue.put(*make_item(0))
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put(*make_item(1))
        assert queue.get(timeout=0.1)[0].request_id == 0
        assert queue.get(timeout=0.1) is None  # closed and empty: no blocking

    def test_drain_pending_fails_queued_futures(self):
        queue = AdmissionQueue(capacity=4)
        _, response = make_item(0)
        queue.put(Request(request_id=0, inputs=np.zeros(3, dtype=np.float32)), response)
        assert queue.drain_pending() == 1
        with pytest.raises(QueueClosedError):
            response.result(timeout=0.1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)

    def test_dual_conditions_share_the_queue_lock(self):
        """Regression (docs/ANALYSIS.md): put() notifies _not_empty while
        holding _not_full's mutex and vice versa — sound only because both
        conditions wrap the one queue lock.  A condition with its own
        implicit lock would turn every notify into a silent lost wakeup."""
        queue = AdmissionQueue(capacity=2)
        assert queue._not_full._lock is queue._lock
        assert queue._not_empty._lock is queue._lock

    def test_cross_condition_wakeup_actually_wakes(self):
        # End-to-end proof of the invariant above: a consumer blocked on
        # _not_empty must be woken by a put() that entered via _not_full.
        queue = AdmissionQueue(capacity=1)
        got = []

        def consumer():
            got.append(queue.get(timeout=5))

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.put(*make_item(7))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got and got[0][0].request_id == 7


class TestResponse:
    def test_result_blocks_until_resolved(self):
        response = Response()
        with pytest.raises(TimeoutError):
            response.result(timeout=0.01)
        result = RequestResult(request_id=1, prediction=3, exit_timestep=2, score=0.1)
        response.set_result(result)
        assert response.done()
        assert response.result(timeout=0.1).prediction == 3

    def test_exception_propagates(self):
        response = Response()
        response.set_exception(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            response.result(timeout=0.1)


class TestRequestResult:
    def test_latency_decomposition(self):
        result = RequestResult(
            request_id=0, prediction=1, exit_timestep=2, score=0.0,
            arrival_time=1.0, start_time=1.5, finish_time=3.0, label=1,
        )
        assert result.queue_delay == pytest.approx(0.5)
        assert result.service_time == pytest.approx(1.5)
        assert result.latency == pytest.approx(2.0)
        assert result.correct is True
