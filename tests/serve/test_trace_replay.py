"""Traffic WAL record/replay: format, crash recovery, and the bitwise gate.

Three contracts pinned here:

1. **WAL round trip** — a live serve run recorded through
   :class:`~repro.serve.TraceRecorder` loads back with every field intact,
   clips deduplicated by content digest, and rejections preserved.
2. **Crash recovery** — a trace whose tail was interrupted mid-append (torn
   record line, corrupt CRC, truncated clip frame) loads its longest valid
   prefix and flags ``Trace.truncated``; nothing before the tear is lost.
3. **Cross-composition replay** — the same recorded trace replays
   decision-exact (bitwise predictions and exit timesteps) through thread
   workers and process replicas alike.  Per-sample batch invariance is what
   makes this well-defined; the replayer's refusal cases (missing clips,
   moving threshold, mismatched server knobs) keep it honest.

The model, clip batches and the canonical recorded trace come from the
session-scoped fixtures in ``tests/serve/conftest.py`` (shared with the
storm and backtest suites).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.serve import (
    Request,
    Server,
    Trace,
    TraceRecord,
    TraceRecorder,
    TraceReplayer,
    clip_digest,
    load_trace,
)

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10
THRESHOLD = 0.5


def _server(model, *, num_workers=1, num_replicas=0, trace=None, capacity=64):
    return Server(
        model, EntropyExitPolicy(THRESHOLD), max_timesteps=TIMESTEPS,
        batch_width=3, queue_capacity=capacity,
        num_workers=num_workers, num_replicas=num_replicas,
        use_runtime=True, trace=trace,
    )


# --------------------------------------------------------------------------- #
class TestWalRoundTrip:
    def test_recorded_run_loads_back_intact(self, tmp_path, served_model,
                                            make_clips, record_trace):
        xs = make_clips(10)
        labels = list(range(10))
        trace = record_trace(served_model, xs, tmp_path / "t.jsonl",
                             labels=labels)

        assert not trace.truncated
        assert trace.header["version"] == 1
        assert trace.header["store_clips"] is True
        assert trace.threshold == THRESHOLD
        assert trace.max_timesteps == TIMESTEPS
        assert len(trace.records) == len(xs)
        assert trace.fixed_threshold() == THRESHOLD

        by_id = {record.request_id: record for record in trace.records}
        assert sorted(by_id) == list(range(10))
        for i, x in enumerate(xs):
            record = by_id[i]
            assert record.digest == clip_digest(x).hex()
            assert record.digest in trace.clips
            np.testing.assert_array_equal(
                trace.clips[record.digest], x.astype(np.float32)
            )
            assert 1 <= record.exit_timestep <= TIMESTEPS
            assert 0 <= record.prediction < NUM_CLASSES
            assert record.label == labels[i]
            assert record.threshold == THRESHOLD
            assert record.arrival_offset >= 0.0
            assert record.service_time >= 0.0

    def test_clip_store_dedupes_by_content(self, tmp_path, served_model,
                                           make_clips, record_trace):
        clip = make_clips(1)[0]
        xs = [clip.copy() for _ in range(6)]  # same bytes, 6 requests
        trace = record_trace(served_model, xs, tmp_path / "t.jsonl")
        assert len(trace.records) == 6
        assert len(trace.clips) == 1  # content-addressed: one stored frame

    def test_rejection_round_trip_and_close_idempotent(self, tmp_path,
                                                       make_clips):
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(str(path), meta={"threshold": 0.7})
        clip = make_clips(1)[0]
        recorder.record_rejection(Request(request_id=5, inputs=clip), 12.5)
        recorder.record_rejection(Request(request_id=6, inputs=clip), 13.0)
        assert recorder.rejections_written == 2
        recorder.close()
        recorder.close()  # idempotent
        # Records after close are dropped, not written to a closed handle.
        recorder.record_rejection(Request(request_id=7, inputs=clip), 14.0)

        trace = load_trace(str(path))
        assert len(trace.rejections) == 2
        assert trace.rejections[0]["id"] == 5
        assert trace.rejections[0]["digest"] == clip_digest(clip).hex()
        # Offsets are relative to the first recorded event.
        assert trace.rejections[0]["arrival"] == 0.0
        assert trace.rejections[1]["arrival"] == pytest.approx(0.5)

    def test_store_clips_false_records_events_only(self, tmp_path, make_clips):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(str(path), store_clips=False) as recorder:
            recorder.record_rejection(
                Request(request_id=0, inputs=make_clips(1)[0]), 0.0
            )
        trace = load_trace(str(path))
        assert trace.header["store_clips"] is False
        assert trace.clips == {}
        assert not (tmp_path / "t.jsonl.clips").exists()


# --------------------------------------------------------------------------- #
class TestWalRecovery:
    def _recorded(self, tmp_path, served_model, make_clips, record_trace):
        path = tmp_path / "t.jsonl"
        return record_trace(served_model, make_clips(8), path), path

    def test_torn_tail_line_drops_only_the_tail(self, tmp_path, served_model,
                                                make_clips, record_trace):
        trace, path = self._recorded(tmp_path, served_model, make_clips,
                                     record_trace)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"request","id":99')  # crash mid-append
        recovered = load_trace(str(path))
        assert recovered.truncated
        assert len(recovered.records) == len(trace.records)
        assert [r.request_id for r in recovered.records] == [
            r.request_id for r in trace.records
        ]

    def test_corrupt_crc_ends_the_scan_at_the_bad_line(self, tmp_path,
                                                       served_model,
                                                       make_clips,
                                                       record_trace):
        _, path = self._recorded(tmp_path, served_model, make_clips,
                                 record_trace)
        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        # Flip payload bytes in the 4th line (header + 3 records survive).
        lines[4] = lines[4].replace('"kind":"request"', '"kind":"requesX"')
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        recovered = load_trace(str(path))
        assert recovered.truncated
        assert len(recovered.records) == 3  # longest valid prefix

    def test_truncated_clip_store_keeps_whole_frames(self, tmp_path,
                                                     served_model, make_clips,
                                                     record_trace):
        trace, path = self._recorded(tmp_path, served_model, make_clips,
                                     record_trace)
        clips_path = str(path) + ".clips"
        size = len(open(clips_path, "rb").read())
        with open(clips_path, "rb+") as handle:
            handle.truncate(size - 37)  # tear the last frame mid-payload
        recovered = load_trace(str(path))
        assert recovered.truncated
        assert len(recovered.clips) < len(trace.clips)
        # Every surviving clip is bitwise intact (CRC-validated frames).
        for digest, clip in recovered.clips.items():
            np.testing.assert_array_equal(clip, trace.clips[digest])
        # A replay over records whose clips were lost must refuse loudly.
        if any(r.digest not in recovered.clips for r in recovered.records):
            with pytest.raises(ValueError, match="missing from the clip store"):
                TraceReplayer(recovered)


# --------------------------------------------------------------------------- #
def _fake_trace(records, clips=None, header=None):
    return Trace(header=header or {}, records=records, rejections=[],
                 clips=clips or {})


def _fake_record(request_id, digest="00" * 16, threshold=0.5, arrival=0.0):
    return TraceRecord(
        request_id=request_id, digest=digest, arrival_offset=arrival,
        exit_timestep=1, prediction=0, score=1.0, threshold=threshold,
    )


class TestReplayerRefusals:
    def test_empty_trace_refused(self):
        with pytest.raises(ValueError, match="no request records"):
            TraceReplayer(_fake_trace([]))

    def test_missing_clips_refused(self):
        trace = _fake_trace([_fake_record(0)])  # no clip store at all
        with pytest.raises(ValueError, match="missing from the clip store"):
            TraceReplayer(trace)

    def test_moving_threshold_refused_unless_unverified(self, make_clips):
        clip = make_clips(1)[0]
        digest = clip_digest(clip).hex()
        records = [
            _fake_record(0, digest=digest, threshold=0.4),
            _fake_record(1, digest=digest, threshold=0.6),
        ]
        trace = _fake_trace(records, clips={digest: clip})
        assert trace.fixed_threshold() is None
        with pytest.raises(ValueError, match="moving threshold"):
            TraceReplayer(trace)
        # As a pure load source the same trace is fine.
        replayer = TraceReplayer(trace, verify=False)
        assert replayer.verify is False

    def test_check_server_rejects_mismatched_knobs(self, canonical_trace):
        model, trace = canonical_trace
        replayer = TraceReplayer(trace)

        wrong_threshold = Server(
            model, EntropyExitPolicy(0.9), max_timesteps=TIMESTEPS,
            use_runtime=True,
        )
        with pytest.raises(ValueError, match="threshold"):
            replayer.check_server(wrong_threshold)

        wrong_horizon = Server(
            model, EntropyExitPolicy(THRESHOLD), max_timesteps=TIMESTEPS + 2,
            use_runtime=True,
        )
        with pytest.raises(ValueError, match="max_timesteps"):
            replayer.check_server(wrong_horizon)


# --------------------------------------------------------------------------- #
class TestCrossCompositionReplay:
    """The canonical gate: one recorded trace, bitwise-exact everywhere."""

    @pytest.mark.parametrize(
        "num_workers,num_replicas",
        [(1, 0), (2, 0), (1, 1), (1, 2)],
        ids=["1-worker", "2-workers", "1-replica", "2-replicas"],
    )
    def test_replay_is_bitwise_exact(self, canonical_trace, num_workers,
                                     num_replicas):
        model, trace = canonical_trace
        server = _server(
            model, num_workers=num_workers, num_replicas=num_replicas
        ).start()
        try:
            replayer = TraceReplayer(trace)
            report = replayer.replay(server, result_timeout=60.0)
        finally:
            server.shutdown(drain=True)
        assert report.exact
        assert report.completed == report.offered == len(trace.records)
        replayer.assert_exact(report)

    def test_report_carries_decision_aggregates(self, canonical_trace):
        """Satellite: exit-histogram and energy/EDP aggregates are computed
        from the replay's own results, on the verifying AND the
        ``verify=False`` path (the backtester scores from these)."""
        model, trace = canonical_trace
        for verify in (True, False):
            server = _server(model).start()
            try:
                report = TraceReplayer(trace, verify=verify).replay(
                    server, result_timeout=60.0)
            finally:
                server.shutdown(drain=True)
            assert len(report.exit_histogram) == TIMESTEPS
            assert sum(report.exit_histogram) == len(trace.records)
            recorded_exits = [r.exit_timestep for r in trace.records]
            expected = np.bincount(recorded_exits,
                                   minlength=TIMESTEPS + 1)[1:]
            assert report.exit_histogram == [int(c) for c in expected]
            assert report.mean_exit == pytest.approx(
                float(np.mean(recorded_exits)))
            # No cost model on this server: energy stays None, not 0.0.
            assert report.energy_mean is None
            assert report.energy_total is None
            assert report.edp_mean is None

    def test_report_energy_aggregates_with_cost_model(self, canonical_trace):
        from repro.imc import IMCChip

        model, trace = canonical_trace
        sample = np.stack([trace.clips[r.digest] for r in trace.records[:4]])
        chip = IMCChip.from_network(model, sample, num_classes=NUM_CLASSES)
        server = Server(
            model, EntropyExitPolicy(THRESHOLD), max_timesteps=TIMESTEPS,
            batch_width=3, use_runtime=True, cost_model=chip,
        ).start()
        try:
            report = TraceReplayer(trace, verify=False).replay(
                server, result_timeout=60.0)
        finally:
            server.shutdown(drain=True)
        # Energy is priced per request from the recorded exits; the replay
        # aggregates must match pricing the trace's own exit timesteps.
        expected = [chip.energy(r.exit_timestep) for r in trace.records]
        assert report.energy_total == pytest.approx(sum(expected))
        assert report.energy_mean == pytest.approx(
            sum(expected) / len(expected))
        assert report.edp_mean is not None and report.edp_mean > 0.0

    def test_assert_exact_diff_is_readable(self, canonical_trace):
        _, trace = canonical_trace
        replayer = TraceReplayer(trace)
        from repro.serve import ReplayMismatch, ReplayReport

        report = ReplayReport(
            offered=2, completed=2, duration=1.0,
            mismatches=[ReplayMismatch(7, 1, 2, 3, 4)],
        )
        assert not report.exact
        with pytest.raises(AssertionError, match="request 7"):
            replayer.assert_exact(report)

    def test_honored_arrivals_pace_through_injectable_clock(self,
                                                            canonical_trace):
        model, trace = canonical_trace
        sleeps = []

        class FakeClock:
            def __init__(self):
                self.t = 0.0

            def __call__(self):
                return self.t

            def sleep(self, delay):
                sleeps.append(delay)
                self.t += delay

        clock = FakeClock()
        replayer = TraceReplayer(
            trace, honor_arrivals=True, speed=2.0,
            clock=clock, sleep=clock.sleep,
        )
        server = _server(model).start()
        try:
            report = replayer.replay(server, result_timeout=60.0)
        finally:
            server.shutdown(drain=True)
        assert report.exact
        # The fake clock only advances inside sleep(): the total slept time
        # is exactly the last arrival offset, compressed by the speed factor.
        last_offset = max(r.arrival_offset for r in trace.records)
        assert sum(sleeps) == pytest.approx(last_offset / 2.0)
