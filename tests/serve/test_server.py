"""Server front-end: futures, backpressure, graceful drain, shutdown."""

import time

import numpy as np
import pytest

from repro.core import EntropyExitPolicy
from repro.serve import (
    LoadGenerator,
    QueueFullError,
    Server,
    ServerClosedError,
    request_stream,
)


class SlowPolicy(EntropyExitPolicy):
    """Entropy policy with an artificial per-step delay (forces queue growth)."""

    def __init__(self, threshold=0.2, delay=0.02):
        super().__init__(threshold=threshold)
        self.delay = delay

    def should_exit(self, cumulative_logits):
        time.sleep(self.delay)
        return super().should_exit(cumulative_logits)


class TestServerLifecycle:
    def test_submit_before_start_rejected(self, trained_model):
        server = Server(trained_model, EntropyExitPolicy(0.2))
        with pytest.raises(ServerClosedError):
            server.submit(np.zeros((3, 10, 10), dtype=np.float32))

    def test_predict_roundtrip(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        with Server(trained_model, EntropyExitPolicy(0.5), batch_width=4) as server:
            prediction = server.predict(test.inputs[0], timeout=10.0)
        assert 0 <= prediction < test.num_classes

    def test_graceful_drain_completes_everything(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        server = Server(
            trained_model, EntropyExitPolicy(0.5), batch_width=4, queue_capacity=64
        ).start()
        responses = [
            server.submit(test.inputs[i], int(test.labels[i])) for i in range(24)
        ]
        server.shutdown(drain=True, timeout=30.0)
        assert all(response.done() for response in responses)
        results = [response.result(timeout=1.0) for response in responses]
        assert server.telemetry.completed == 24
        assert {r.request_id for r in results} == set(range(24))
        with pytest.raises(ServerClosedError):
            server.submit(test.inputs[0])

    def test_hard_shutdown_fails_pending_requests(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        server = Server(
            trained_model,
            SlowPolicy(threshold=0.0, delay=0.05),  # never exits early, slow steps
            batch_width=1,
            queue_capacity=32,
        ).start()
        responses = [server.submit(test.inputs[i]) for i in range(8)]
        server.shutdown(drain=False, timeout=5.0)
        # Every request either finished before the stop or was aborted.
        completed = failures = 0
        for response in responses:
            try:
                response.result(timeout=1.0)
                completed += 1
            except Exception:
                failures += 1
        assert completed + failures == 8
        assert failures >= 1

    def test_backpressure_rejects_when_queue_full(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        server = Server(
            trained_model,
            SlowPolicy(threshold=0.0, delay=0.05),
            batch_width=1,
            queue_capacity=1,
        ).start()
        try:
            rejected = 0
            for i in range(8):
                try:
                    server.submit(test.inputs[i % len(test)], block=False)
                except QueueFullError:
                    rejected += 1
            assert rejected >= 1
            assert server.telemetry.rejected == rejected
        finally:
            server.shutdown(drain=False, timeout=5.0)


class TestLoadGenerator:
    def test_closed_loop_serves_whole_stream(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        server = Server(trained_model, EntropyExitPolicy(0.5), batch_width=4).start()
        report = LoadGenerator(server).run(request_stream(test, 20, seed=3))
        server.shutdown(drain=True)
        assert report.offered == 20
        assert report.completed == 20
        assert report.dropped == 0
        assert report.throughput_rps > 0
        assert report.accuracy() is not None
        assert 1.0 <= report.average_exit_timesteps() <= 4.0

    def test_open_loop_paces_arrivals(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        server = Server(trained_model, EntropyExitPolicy(0.5), batch_width=4).start()
        report = LoadGenerator(server, rate=200.0).run(request_stream(test, 10, seed=3))
        server.shutdown(drain=True)
        assert report.completed == 10
        # 10 arrivals at 200 req/s occupy at least (10-1)/200 seconds.
        assert report.duration >= 9 / 200.0

    def test_request_stream_is_deterministic(self, tiny_dataset):
        _, test = tiny_dataset
        first = list(request_stream(test, 30, seed=9))
        second = list(request_stream(test, 30, seed=9))
        for (a_x, a_y), (b_x, b_y) in zip(first, second):
            assert np.array_equal(a_x, b_x)
            assert a_y == b_y
        # Wrap-around past the dataset size stays deterministic and covers data.
        long = list(request_stream(test, len(test) + 10, seed=9))
        assert len(long) == len(test) + 10


class TestWorkerCrash:
    # The worker intentionally re-raises after failing its futures so the
    # crash is visible on stderr; pytest flags that re-raise as unhandled.
    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_crashed_worker_fails_futures_and_closes_server(
        self, trained_model, tiny_dataset
    ):
        _, test = tiny_dataset
        server = Server(trained_model, EntropyExitPolicy(0.5), batch_width=2).start()
        # Wrong sample shape: the conv forward raises inside the worker.
        bad = server.submit(np.zeros((3, 3), dtype=np.float32))
        with pytest.raises(Exception):
            bad.result(timeout=10.0)
        # The worker fail-stops: admissions close and later submits are refused
        # instead of hanging forever.
        deadline = time.monotonic() + 5.0
        while not server.queue.closed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.queue.closed
        with pytest.raises(ServerClosedError):
            server.submit(test.inputs[0])
