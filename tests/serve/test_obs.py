"""Request-lifecycle spans, the metrics registry, and the op-timing hook.

Pins the observability layer's contracts:

* span stamps share one (injectable) clock domain, so every span is monotone
  in lifecycle order — asserted under a fake ticking clock on a live server;
* counters/gauges/histograms merge exactly (fixed buckets) and export valid
  Prometheus text exposition;
* :meth:`Telemetry.fill_registry` surfaces every counter and gauge family
  from the raw samples;
* the per-op timing hook costs nothing unless ``REPRO_TRACE_OPS=1`` was set
  when the executor was built, and attributes real time to real ops when on.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.serve import (
    Counter,
    Gauge,
    Histogram,
    InferenceEngine,
    MetricsRegistry,
    Request,
    RequestResult,
    Response,
    Server,
    SpanTracker,
    Telemetry,
)
from repro.snn import spiking_vgg
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10


def _model(seed=47):
    seed_everything(seed)
    model = spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS,
    ).eval()
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(25.0)
    return model


def _inputs(batch, seed=3):
    rng = np.random.default_rng(seed)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _result(request_id, arrival=0.0, queue_delay=0.1, service=0.2,
            exit_timestep=2, energy=None):
    start = arrival + queue_delay
    return RequestResult(
        request_id=request_id, prediction=1, exit_timestep=exit_timestep,
        score=0.9, label=1, arrival_time=arrival, start_time=start,
        finish_time=start + service, energy=energy,
    )


class TickingClock:
    """Thread-safe fake clock: strictly increases on every read."""

    def __init__(self, step=1e-6):
        self._lock = threading.Lock()
        self._step = step
        self._t = 0.0

    def __call__(self):
        with self._lock:
            self._t += self._step
            return self._t


# --------------------------------------------------------------------------- #
class TestSpans:
    def test_manual_stamps_monotone_and_durations(self):
        tracker = SpanTracker()
        tracker.record(1, "queued", 1.0)
        tracker.record(1, "admitted", 2.0)
        tracker.record(1, "exited", 3.5)
        tracker.record(1, "completed", 3.6)
        (span,) = tracker.spans()
        assert span.monotone
        assert span.duration("queued", "admitted") == 1.0
        assert span.duration("admitted", "exited") == 1.5
        assert span.duration("queued", "dispatched") is None
        durations = tracker.stage_durations()
        assert durations["queue_wait"] == [1.0]
        assert durations["total"] == [pytest.approx(2.6)]

    def test_out_of_order_stamp_breaks_monotonicity(self):
        tracker = SpanTracker()
        tracker.record(1, "queued", 5.0)
        tracker.record(1, "admitted", 4.0)  # went backwards
        (span,) = tracker.spans()
        assert not span.monotone

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown span stage"):
            SpanTracker().record(1, "teleported", 0.0)

    def test_record_result_stamps_the_whole_lifecycle(self):
        tracker = SpanTracker()
        result = _result(3, arrival=10.0, queue_delay=0.5, service=1.5)
        tracker.record_result(result, completed_at=12.25)
        (span,) = tracker.spans()
        assert span.events == {
            "queued": 10.0, "admitted": 10.5, "exited": 12.0,
            "completed": 12.25,
        }
        assert span.monotone

    def test_capacity_evicts_oldest(self):
        tracker = SpanTracker(capacity=3)
        for request_id in range(5):
            tracker.record(request_id, "queued", float(request_id))
        assert len(tracker) == 3
        assert sorted(s.request_id for s in tracker.spans()) == [2, 3, 4]
        with pytest.raises(ValueError):
            SpanTracker(capacity=0)

    def test_live_server_spans_monotone_under_injectable_clock(self):
        """Every stamp comes from the server's clock — so with a fake
        ticking clock, every span must come out monotone and complete."""
        model = _model()
        xs = _inputs(8)
        clock = TickingClock()
        spans = SpanTracker()
        server = Server(
            model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            batch_width=3, queue_capacity=len(xs), num_workers=2,
            use_runtime=True, clock=clock, spans=spans,
        ).start()
        try:
            futures = [server.submit(x) for x in xs]
            for future in futures:
                future.result(timeout=60.0)
        finally:
            server.shutdown(drain=True)
        tracked = spans.spans()
        assert len(tracked) == len(xs)
        for span in tracked:
            assert span.monotone, span
            for stage in ("queued", "admitted", "exited", "completed"):
                assert stage in span.events, (span.request_id, stage)
        summary = spans.summary()
        assert summary["total"]["count"] == float(len(xs))
        assert summary["service"]["p95"] >= 0.0

    def test_merge_state_unions_disjoint_request_ids(self):
        parts = [SpanTracker() for _ in range(3)]
        pooled = SpanTracker()
        for request_id in range(9):
            result = _result(request_id, arrival=float(request_id))
            parts[request_id % 3].record_result(result, result.finish_time + 0.1)
            pooled.record_result(result, result.finish_time + 0.1)
        merged = SpanTracker()
        for part in parts:
            merged.merge_state(part.export_state())
        assert len(merged) == len(pooled) == 9
        assert {
            s.request_id: s.events for s in merged.spans()
        } == {s.request_id: s.events for s in pooled.spans()}


# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_semantics(self):
        counter = Counter("c", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)
        other = Counter("c")
        other.inc(4)
        counter.merge(other)
        assert counter.value == 7.5

    def test_gauge_modes(self):
        peak = Gauge("g", mode="max")
        peak.set(3)
        peak.set(1)
        assert peak.value == 3.0
        additive = Gauge("g", mode="sum")
        additive.set(3)
        additive.set(1)
        assert additive.value == 4.0
        last = Gauge("g", mode="last")
        last.set(3)
        last.set(1)
        assert last.value == 1.0
        with pytest.raises(ValueError, match="gauge mode"):
            Gauge("g", mode="median")
        # Merge: unset sides never clobber set sides.
        empty = Gauge("g", mode="max")
        peak.merge(empty)
        assert peak.value == 3.0
        empty.merge(peak)
        assert empty.value == 3.0

    def test_histogram_buckets_and_exact_merge(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(106.0)

        other = Histogram("h", buckets=(1.0, 2.0, 4.0))
        other.observe(3.5)
        histogram.merge(other)
        assert histogram.counts == [2, 1, 2, 1]

        mismatched = Histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="differing bucket bounds"):
            histogram.merge(mismatched)
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(2.0, 1.0))

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_done_total", "Done").inc(3)
        registry.gauge("repro_depth", "Depth").set(7)
        histogram = registry.histogram("repro_lat", "Latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.to_prometheus()
        assert "# TYPE repro_done_total counter" in text
        assert "repro_done_total 3" in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 7" in text
        # Histogram buckets are cumulative and end at +Inf == count.
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_registry_get_or_create_and_type_conflicts(self):
        registry = MetricsRegistry()
        counter = registry.counter("x", "help")
        assert registry.counter("x") is counter  # idempotent
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")
        json_dump = registry.to_json()
        assert json_dump["x"]["type"] == "counter"

    def test_registry_merge_adopts_and_folds(self):
        left = MetricsRegistry()
        left.counter("a").inc(1)
        right = MetricsRegistry()
        right.counter("a").inc(2)
        right.gauge("b").set(5)
        left.merge(right)
        assert left.counter("a").value == 3.0
        assert left.gauge("b").value == 5.0

    def test_fill_registry_surfaces_every_family(self):
        telemetry = Telemetry()
        for request_id in range(6):
            telemetry.record_completion(_result(
                request_id, exit_timestep=1 + request_id % TIMESTEPS,
                energy=2.0,
            ))
        telemetry.record_rejection()
        telemetry.record_shed(3)
        telemetry.record_queue_depth(2)
        telemetry.record_queue_depth(9)
        telemetry.record_occupancy(3, 4)

        registry = MetricsRegistry()
        telemetry.fill_registry(registry, max_timesteps=TIMESTEPS)
        metrics = registry.to_json()
        assert metrics["repro_requests_completed_total"]["value"] == 6.0
        assert metrics["repro_requests_rejected_total"]["value"] == 1.0
        assert metrics["repro_requests_shed_total"]["value"] == 3.0
        assert metrics["repro_request_latency_seconds"]["count"] == 6
        assert metrics["repro_request_energy_total"]["value"] == pytest.approx(12.0)
        exits = metrics["repro_request_exit_timesteps"]
        assert exits["buckets"] == [1.0, 2.0, 3.0, 4.0]
        # 6 requests cycling exit 1..4: two exits at t=1 and t=2, one each
        # at t=3 and t=4; nothing beyond the horizon.
        assert exits["counts"] == [2, 2, 1, 1, 0]
        assert metrics["repro_queue_depth_max"]["value"] == 9.0
        assert metrics["repro_occupancy_max"]["value"] == 0.75


# --------------------------------------------------------------------------- #
class TestOpTimingHook:
    def _run_one(self, engine):
        engine.admit(Request(request_id=0, inputs=_inputs(1)[0]), Response(), 0.0)
        for _ in range(TIMESTEPS):
            if engine.step():
                break

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_OPS", raising=False)
        engine = InferenceEngine(
            _model(), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            use_runtime=True,
        )
        self._run_one(engine)
        assert engine._executor.trace_ops is False
        assert engine.op_timings() is None

    def test_env_enables_per_op_attribution(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_OPS", "1")
        engine = InferenceEngine(
            _model(), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            use_runtime=True,
        )
        self._run_one(engine)
        timings = engine.op_timings()
        assert timings is not None and len(timings) > 0
        exercised = [entry for entry in timings if entry["calls"] > 0]
        assert exercised, "no op recorded any calls under REPRO_TRACE_OPS=1"
        for entry in exercised:
            assert entry["seconds"] >= 0.0
            assert isinstance(entry["op"], str) and entry["op"]
        # The oracle path has no op list to attribute time to.
        oracle = InferenceEngine(
            _model(), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            use_runtime=False,
        )
        assert oracle.op_timings() is None
