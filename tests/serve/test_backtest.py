"""Offline SLA backtesting: schedules, scoring, and the determinism matrix.

The contracts pinned here:

1. **Schedule algebra** — piecewise :class:`ThresholdSchedule` segments
   partition ``[0, ∞)`` into half-open intervals (boundary offsets belong to
   the segment that *starts* there), the first segment must start at 0, and
   ``from_trace`` losslessly reconstructs a recorded knob trajectory.
2. **Oracle & scoring** — the full-horizon oracle runs each unique clip once
   at θ=0 (the entropy rule never fires), the recorded baseline reproduces
   the trace's own decisions and decision-derived telemetry exactly, and a
   θ=0 candidate scores agreement 1.0 by construction.
3. **The determinism matrix** (tentpole acceptance) — one sweep over the
   canonical trace on {1,2 workers} × {1,2 replicas}: every candidate's
   per-request decisions are bitwise identical across all four compositions
   (same digests), the Pareto frontier is identical, and the artifact's
   deterministic block is byte-for-byte the same JSON.  Wall-clock
   ``measured`` blocks are explicitly excluded — they are the only thing
   allowed to differ.
4. **Artifacts** — schema-v1 JSON round-trips and the sweep refuses reserved
   candidate names and clip-less traces.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.serve import (
    BACKTEST_SCHEMA_VERSION,
    Backtester,
    BacktestSweep,
    RecordedSchedule,
    ScheduleSegment,
    Server,
    ThresholdSchedule,
    Trace,
    TraceRecord,
    decision_digest,
)

TIMESTEPS = 4
THRESHOLD = 0.5


def _server(model, *, num_workers=1, num_replicas=0, threshold=THRESHOLD):
    return Server(
        model, EntropyExitPolicy(threshold), max_timesteps=TIMESTEPS,
        batch_width=3, queue_capacity=64,
        num_workers=num_workers, num_replicas=num_replicas, use_runtime=True,
    )


# --------------------------------------------------------------------------- #
class TestThresholdSchedule:
    def test_constant_covers_everything(self):
        schedule = ThresholdSchedule.constant(0.3, horizon=2)
        assert schedule.knobs_at(0.0) == (0.3, 2)
        assert schedule.knobs_at(1e9) == (0.3, 2)

    def test_piecewise_boundaries_are_half_open(self):
        schedule = ThresholdSchedule.piecewise([(0.0, 0.5), (2.0, 0.3),
                                                (5.0, 0.8)])
        assert schedule.knobs_at(0.0)[0] == 0.5
        assert schedule.knobs_at(1.999)[0] == 0.5
        assert schedule.knobs_at(2.0)[0] == 0.3  # boundary → new segment
        assert schedule.knobs_at(4.999)[0] == 0.3
        assert schedule.knobs_at(5.0)[0] == 0.8
        assert schedule.segment_index(2.0) == 1

    def test_first_segment_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at offset 0"):
            ThresholdSchedule([ScheduleSegment(1.0, 0.5)])

    def test_starts_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ThresholdSchedule.piecewise([(0.0, 0.5), (2.0, 0.3), (2.0, 0.8)])

    def test_threshold_range_and_horizon_validated(self):
        with pytest.raises(ValueError, match="outside"):
            ThresholdSchedule.constant(1.5)
        with pytest.raises(ValueError, match="horizon"):
            ThresholdSchedule.constant(0.5, horizon=0)
        with pytest.raises(ValueError, match="at least one segment"):
            ThresholdSchedule([])

    def test_negative_offset_lands_in_the_opening_segment(self):
        # WAL arrival offsets are relative to the first *completed* request,
        # so requests that arrived before it carry small negative offsets;
        # they get the opening segment's knobs, not an error.
        schedule = ThresholdSchedule.piecewise([(0.0, 0.5), (1.0, 0.2)])
        assert schedule.segment_index(-2e-5) == 0
        assert schedule.knobs_at(-0.1) == (0.5, None)

    def test_spec_round_trip(self):
        schedule = ThresholdSchedule.piecewise([(0.0, 0.5), (3.0, 0.2)],
                                               horizon=3)
        spec = schedule.spec()
        assert spec["kind"] == "piecewise"
        rebuilt = ThresholdSchedule([
            ScheduleSegment(s["start"], s["threshold"], s["horizon"])
            for s in spec["segments"]
        ])
        assert rebuilt == schedule

    def test_from_trace_reconstructs_knob_trajectory(self):
        records = [
            TraceRecord(request_id=i, digest="00", arrival_offset=offset,
                        exit_timestep=1, prediction=0, score=0.5,
                        threshold=threshold, horizon=4)
            for i, (offset, threshold) in enumerate(
                [(0.0, 0.3), (1.0, 0.3), (2.5, 0.9), (4.0, 0.9)])
        ]
        trace = Trace(header={}, records=records, rejections=[], clips={})
        schedule = ThresholdSchedule.from_trace(trace)
        assert len(schedule.segments) == 2
        assert schedule.knobs_at(1.0) == (0.3, 4)
        assert schedule.knobs_at(2.5) == (0.9, 4)
        # Per-record evaluation matches the recording everywhere.
        for record in records:
            assert schedule.knobs_for(record)[0] == record.threshold

    def test_recorded_schedule_pins_per_record(self):
        record = TraceRecord(request_id=0, digest="00", arrival_offset=0.0,
                             exit_timestep=1, prediction=0, score=0.5,
                             threshold=0.7, horizon=2)
        assert RecordedSchedule().knobs_for(record) == (0.7, 2)
        assert RecordedSchedule().spec() == {"kind": "recorded"}


# --------------------------------------------------------------------------- #
class TestBacktesterScoring:
    def test_refuses_clipless_and_empty_traces(self):
        empty = Trace(header={}, records=[], rejections=[], clips={})
        with pytest.raises(ValueError, match="no request records"):
            Backtester(empty)
        record = TraceRecord(request_id=0, digest="ff", arrival_offset=0.0,
                             exit_timestep=1, prediction=0, score=0.5,
                             threshold=0.5)
        clipless = Trace(header={}, records=[record], rejections=[], clips={})
        with pytest.raises(ValueError, match="missing from the clip store"):
            Backtester(clipless)

    def test_oracle_is_full_horizon_and_cached(self, canonical_trace):
        model, trace = canonical_trace
        backtester = Backtester(trace)
        server = _server(model).start()
        try:
            oracle = backtester.oracle(server)
            assert backtester.oracle(server) is oracle  # cached
        finally:
            server.shutdown(drain=True)
        assert set(oracle) == {r.digest for r in trace.records}
        # Reference: the Tensor-path full-horizon predictions per clip —
        # the argmax of the cumulative logits at the last timestep.
        digests = sorted(oracle)
        xs = np.stack([trace.clips[d] for d in digests])
        logits = model.forward(xs, TIMESTEPS).cumulative_numpy()
        full = logits[-1].argmax(axis=1)
        assert [oracle[d] for d in digests] == [int(p) for p in full]

    def test_baseline_reproduces_trace_exactly(self, canonical_trace):
        model, trace = canonical_trace
        sweep = BacktestSweep(trace, {}, include_baseline=True)
        server = _server(model).start()
        try:
            result = sweep.run(server)
        finally:
            server.shutdown(drain=True)
        assert result.baseline_exact, result.baseline_mismatches
        baseline = result.candidate("recorded")
        recorded = {(r.request_id, r.prediction, r.exit_timestep)
                    for r in trace.records}
        assert set(map(tuple, baseline.decisions)) == recorded
        # Decision-derived scores equal the trace's own telemetry.
        exits = [r.exit_timestep for r in trace.records]
        assert baseline.mean_exit == pytest.approx(float(np.mean(exits)))
        assert sum(baseline.exit_histogram) == len(trace.records)
        labelled = [r for r in trace.records if r.label is not None]
        expected_accuracy = (sum(1 for r in labelled
                                 if r.prediction == r.label) / len(labelled))
        assert baseline.accuracy == pytest.approx(expected_accuracy)

    def test_oracle_threshold_candidate_agrees_fully(self, canonical_trace):
        model, trace = canonical_trace
        backtester = Backtester(trace)
        server = _server(model).start()
        try:
            candidate = backtester.evaluate(
                server, ThresholdSchedule.constant(0.0), name="oracle-knob")
        finally:
            server.shutdown(drain=True)
        # θ=0 is the oracle's own knob: agreement 1.0, all exits at horizon.
        assert candidate.agreement == 1.0
        assert all(exit_t == TIMESTEPS for _, _, exit_t in candidate.decisions)
        assert candidate.exit_histogram[-1] == len(trace.records)

    def test_horizon_cap_bounds_exits(self, canonical_trace):
        model, trace = canonical_trace
        backtester = Backtester(trace)
        server = _server(model).start()
        try:
            capped = backtester.evaluate(
                server, ThresholdSchedule.constant(0.0, horizon=2),
                name="capped")
        finally:
            server.shutdown(drain=True)
        assert all(exit_t <= 2 for _, _, exit_t in capped.decisions)
        assert sum(capped.exit_histogram[2:]) == sum(
            1 for _, _, e in capped.decisions if e >= 3) == 0

    def test_reserved_baseline_name_refused(self, canonical_trace):
        _, trace = canonical_trace
        with pytest.raises(ValueError, match="reserved"):
            BacktestSweep(trace,
                          {"recorded": ThresholdSchedule.constant(0.5)})
        with pytest.raises(ValueError, match="at least one candidate"):
            BacktestSweep(trace, {}, include_baseline=False)


# --------------------------------------------------------------------------- #
class TestDeterminismMatrix:
    """Tentpole acceptance: same trace + same candidate schedules →
    bitwise-identical decisions and identical Pareto output on every
    composition."""

    CANDIDATES = {
        "tight": ThresholdSchedule.constant(0.05),
        "loose": ThresholdSchedule.constant(0.8),
        "capped": ThresholdSchedule.constant(0.5, horizon=2),
        "stepped": ThresholdSchedule.piecewise([(0.0, 0.2), (0.001, 0.6)]),
    }
    COMPOSITIONS = [(1, 0), (2, 0), (1, 1), (1, 2)]

    @pytest.fixture(scope="class")
    def matrix(self, canonical_trace):
        model, trace = canonical_trace
        results = {}
        for num_workers, num_replicas in self.COMPOSITIONS:
            sweep = BacktestSweep(trace, self.CANDIDATES)
            server = _server(model, num_workers=num_workers,
                             num_replicas=num_replicas).start()
            try:
                results[(num_workers, num_replicas)] = sweep.run(server)
            finally:
                server.shutdown(drain=True)
        return trace, results

    def test_decisions_bitwise_identical_across_compositions(self, matrix):
        _, results = matrix
        reference = results[(1, 0)]
        for composition, result in results.items():
            reference.assert_decisions_equal(result)
            assert result.decision_map() == reference.decision_map(), \
                composition

    def test_pareto_identical_across_compositions(self, matrix):
        _, results = matrix
        paretos = {tuple(result.pareto) for result in results.values()}
        assert len(paretos) == 1

    def test_deterministic_artifact_block_is_identical_json(self, matrix):
        """The artifact minus the wall-clock ``measured`` blocks must be
        byte-identical JSON across all four compositions."""
        _, results = matrix

        def deterministic_block(result):
            document = result.to_document()
            document.pop("composition")
            for candidate in document["candidates"]:
                candidate.pop("measured")
            return json.dumps(document, sort_keys=True)

        blocks = {deterministic_block(r) for r in results.values()}
        assert len(blocks) == 1

    def test_baseline_exact_on_every_composition(self, matrix):
        _, results = matrix
        for composition, result in results.items():
            assert result.baseline_exact, (composition,
                                           result.baseline_mismatches)

    def test_mismatch_is_reported_loudly(self, matrix):
        _, results = matrix
        reference = results[(1, 0)]
        tampered = results[(2, 0)]
        # Forge one moved decision and check the assert names the candidate.
        victim = tampered.candidates[1]
        original = victim.decisions[0]
        victim.decisions[0] = (original[0], original[1] + 1, original[2])
        try:
            with pytest.raises(AssertionError, match=victim.name):
                reference.assert_decisions_equal(tampered)
        finally:
            victim.decisions[0] = original

    def test_digest_tracks_decisions(self):
        a = [(0, 1, 2), (1, 3, 4)]
        assert decision_digest(a) == decision_digest(list(a))
        assert decision_digest(a) != decision_digest([(0, 1, 2), (1, 3, 1)])


# --------------------------------------------------------------------------- #
class TestSweepArtifact:
    def test_schema_v1_round_trip(self, canonical_trace, tmp_path):
        model, trace = canonical_trace
        sweep = BacktestSweep(trace, {"mid": ThresholdSchedule.constant(0.3)})
        server = _server(model).start()
        try:
            result = sweep.run(server)
        finally:
            server.shutdown(drain=True)
        path = tmp_path / "sweep.json"
        result.to_json(str(path))
        document = json.loads(path.read_text())
        assert document["schema_version"] == BACKTEST_SCHEMA_VERSION
        assert document["kind"] == "backtest_sweep"
        assert document["trace"]["records"] == len(trace.records)
        assert document["baseline"]["exact"] is True
        names = {c["name"] for c in document["candidates"]}
        assert names == {"recorded", "mid"}
        assert set(document["pareto"]) <= names
        for candidate in document["candidates"]:
            assert candidate["decision_digest"]
            assert len(candidate["decisions"]) == len(trace.records)
            assert set(candidate["scores"]) >= {
                "agreement", "mean_exit", "exit_histogram",
                "model_latency_p99"}
        # Decisions can be elided for compact artifacts; digests remain.
        result.to_json(str(path), include_decisions=False)
        compact = json.loads(path.read_text())
        assert all("decisions" not in c for c in compact["candidates"])
        assert all(c["decision_digest"] for c in compact["candidates"])
