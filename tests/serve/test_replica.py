"""Process-replica serving: lifecycle, arena sharing, reloads, fault injection.

The contract under test, in increasing order of violence:

* replicas serve decision-exact results versus the single-worker oracle
  while sharing exactly one ``/dev/shm`` arena segment between them;
* a drained server leaves no shared-memory segment behind;
* an in-place weight reload (``load_state_dict`` + ``refresh_replicas``)
  propagates to live replicas, whose subsequent decisions match a fresh
  oracle of the new weights;
* ``SIGKILL`` of a replica mid-traffic fails *at most its in-flight window*
  with the typed :class:`ReplicaCrashError`, strands no client, leaves the
  surviving replicas serving, and still releases the arena on drain;
* when every replica is gone, queued clients fail typed instead of blocking
  forever.

Fault-injection tests are ``-m slow`` (they kill processes and ride out the
recovery timeouts); the lifecycle tests stay in the fast tier.
"""

from __future__ import annotations

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.serve import (
    InferenceEngine,
    ReplicaCrashError,
    Request,
    Response,
    Server,
    ServerClosedError,
)
from repro.snn import spiking_vgg
from repro.snn.encoding import EventFrameEncoder
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10


def _model(seed=47, encoder=None):
    seed_everything(seed)
    model = spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS,
        **({"encoder": encoder} if encoder is not None else {}),
    ).eval()
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(25.0)
    return model


def _inputs(batch, seed=3, event=False):
    rng = np.random.default_rng(seed)
    if event:
        return rng.random(
            (batch, TIMESTEPS + 1, 3, IMAGE_SIZE, IMAGE_SIZE)
        ).astype(np.float32)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _arena_segments():
    return set(glob.glob("/dev/shm/repro-arena-*"))


def _ring_segments():
    return set(glob.glob("/dev/shm/repro-rings-*"))


def _oracle_decisions(model, xs, threshold=0.5):
    """Sequential single-engine reference (one request at a time)."""
    engine = InferenceEngine(
        model, EntropyExitPolicy(threshold), max_timesteps=TIMESTEPS
    )
    outcomes = {}
    for index in range(xs.shape[0]):
        engine.admit(Request(request_id=index, inputs=xs[index]), Response(), 0.0)
        while not engine.idle:
            for sample in engine.step():
                outcomes[sample.request.request_id] = (
                    sample.prediction, sample.exit_timestep,
                )
    return outcomes


def _replica_server(model, threshold=0.5, num_replicas=2, batch_width=3,
                    queue_capacity=64, **kwargs):
    return Server(
        model, EntropyExitPolicy(threshold), max_timesteps=TIMESTEPS,
        batch_width=batch_width, queue_capacity=queue_capacity,
        num_replicas=num_replicas, **kwargs,
    )


class TestReplicaServing:
    def test_replicas_match_oracle_and_share_one_segment(self):
        model = _model()
        xs = _inputs(24)
        reference = _oracle_decisions(model, xs)
        before = _arena_segments()
        server = _replica_server(model, num_replicas=2).start()
        try:
            during = _arena_segments() - before
            assert len(during) == 1, (
                f"expected exactly one arena segment for 2 replicas, got {during}"
            )
            futures = [server.submit(x) for x in xs]
            results = [future.result(timeout=60.0) for future in futures]
        finally:
            server.shutdown(drain=True)
        decisions = {r.request_id: (r.prediction, r.exit_timestep) for r in results}
        assert decisions == reference
        assert _arena_segments() <= before, "arena leaked past drain"
        stats = server.stats()
        assert stats["completed"] == len(xs)
        assert stats["num_workers"] == 2.0
        # Gauges shipped at drain and merged into the parent telemetry.
        assert "occupancy_mean" in stats

    def test_event_stream_replicas_match_oracle(self):
        """The interned stem-memo keys must survive the process boundary:
        clips are digested in the replica after pickling (layout/dtype
        normalization included), each process fills its own memo, and the
        decisions still match the sequential oracle — including on replay
        traffic after an arena-backed fleet has been serving a while."""
        model = _model(encoder=EventFrameEncoder())
        xs = _inputs(16, seed=29, event=True)
        reference = _oracle_decisions(model, xs)
        server = _replica_server(model, num_replicas=2).start()
        try:
            first = [server.submit(x) for x in xs]
            [future.result(timeout=60.0) for future in first]
            # Replay pass: per-replica memos are warm now.
            replay = [server.submit(x) for x in xs]
            results = [future.result(timeout=60.0) for future in replay]
        finally:
            server.shutdown(drain=True)
        decisions = {
            r.request_id % len(xs): (r.prediction, r.exit_timestep) for r in results
        }
        assert decisions == reference

    def test_shutdown_is_idempotent_and_timed_drain_does_not_tear_down(self):
        """Thread-mode lifecycle contract, kept: explicit drain() followed
        by the context-manager/second shutdown must no-op, and a drain whose
        timeout expires mid-traffic just stops waiting — it must not close
        channels under a live dispatcher or strand the backlog."""
        model = _model()
        xs = _inputs(30, seed=31)
        server = _replica_server(
            model, threshold=0.0, num_replicas=1, batch_width=2,
            queue_capacity=len(xs),
        ).start()
        futures = [server.submit(x) for x in xs]
        server.drain(timeout=0.01)  # expires with most of the backlog queued
        results = [future.result(timeout=60.0) for future in futures]
        assert len(results) == len(xs)
        server.drain()          # completes the retirement
        server.shutdown(drain=True)   # second shutdown: no-op, no ValueError
        server.shutdown(drain=False)  # and the abort path no-ops too

    def test_replica_server_rejects_mixed_scaling_axes(self):
        with pytest.raises(ValueError, match="num_replicas"):
            Server(_model(), EntropyExitPolicy(0.5), num_workers=2, num_replicas=2)

    def test_weight_reload_propagates_to_live_replicas(self):
        model = _model()
        donor = _model(seed=99)
        xs = _inputs(8, seed=21)
        reference_new = _oracle_decisions(donor, xs)
        server = _replica_server(model, num_replicas=1).start()
        try:
            # Warm the replica on the original weights first.
            [server.submit(x) for x in xs][-1].result(timeout=60.0)
            model.load_state_dict(donor.state_dict())
            assert server.refresh_replicas() > 0
            futures = [server.submit(x) for x in xs]
            results = [future.result(timeout=60.0) for future in futures]
        finally:
            server.shutdown(drain=True)
        decisions = {
            r.request_id % len(xs): (r.prediction, r.exit_timestep) for r in results
        }
        assert decisions == reference_new

    def test_threshold_mutation_propagates_without_controller(self):
        """Thread workers see ``server.policy.threshold`` mutations through
        the shared policy object; replicas must follow the same knob (the
        forwarder sends the control message before its next dispatch on the
        same FIFO, so propagation is deterministic)."""
        model = _model()
        xs = _inputs(4, seed=23)
        server = _replica_server(model, threshold=0.0, num_replicas=1).start()
        try:
            first = server.submit(xs[0]).result(timeout=60.0)
            assert first.exit_timestep == TIMESTEPS  # never exits early
            server.policy.threshold = 0.999  # exit as soon as possible
            second = server.submit(xs[0]).result(timeout=60.0)
        finally:
            server.shutdown(drain=True)
        assert second.threshold == 0.999
        assert second.exit_timestep < TIMESTEPS

    def test_ring_segment_lifecycle_and_pipe_transport_parity(self):
        """The ring transport is a pure plumbing change: decisions are
        bitwise-identical to the legacy pipe-pickle transport, a ring fleet
        owns exactly one ``/dev/shm`` ring segment, and a drained server
        (either transport) leaves none behind."""
        model = _model()
        xs = _inputs(16, seed=41)
        reference = _oracle_decisions(model, xs)
        before = _ring_segments()
        for transport in ("pipe", "ring"):
            server = _replica_server(
                model, num_replicas=2, replica_transport=transport
            ).start()
            try:
                during = _ring_segments() - before
                if transport == "ring":
                    assert server.replicas.rings is not None
                    assert len(during) == 1, (
                        f"expected one ring segment for the fleet, got {during}"
                    )
                else:
                    assert server.replicas.rings is None
                    assert during == set()
                futures = [server.submit(x) for x in xs]
                results = [future.result(timeout=60.0) for future in futures]
            finally:
                server.shutdown(drain=True)
            decisions = {
                r.request_id: (r.prediction, r.exit_timestep) for r in results
            }
            assert decisions == reference, f"transport={transport}"
            assert _ring_segments() <= before, "ring segment leaked past drain"

    def test_oversized_frames_fall_back_to_inline_pipe_payloads(self):
        """Frames that exceed the slab's slot capacity ship inline over the
        work queue (ticket=None) instead of through the ring — decisions and
        conservation are unchanged, just slower.  Exercised by shrinking the
        slots below any real frame rather than inflating the clips."""
        from repro.serve import AdmissionQueue, Telemetry
        from repro.serve.replica import ReplicaPool

        model = _model()
        xs = _inputs(8, seed=43)
        reference = _oracle_decisions(model, xs)
        queue = AdmissionQueue(capacity=64)
        telemetry = Telemetry()
        pool = ReplicaPool(
            model, EntropyExitPolicy(0.5), num_replicas=1, queue=queue,
            telemetry=telemetry, max_timesteps=TIMESTEPS, batch_width=3,
            ring_slot_bytes=64,  # every (3,10,10) float32 frame is 1200 B
        )
        pool.start()
        assert pool.wait_ready() == 1
        responses = []
        try:
            for index in range(xs.shape[0]):
                response = Response()
                queue.put(
                    Request(request_id=index, inputs=xs[index]), response
                )
                responses.append(response)
            results = [r.result(timeout=60.0) for r in responses]
        finally:
            queue.close()
            pool.drain()
        assert pool.rings is not None  # the ring existed; it just never fit
        decisions = {
            r.request_id: (r.prediction, r.exit_timestep) for r in results
        }
        assert decisions == reference
        assert telemetry.completed == len(responses)
        assert _ring_segments() == set() or not any(
            pool.rings.spec.name in path for path in _ring_segments()
        ), "ring segment leaked past pool drain"

    def test_unlowerable_model_is_refused_up_front(self):
        from repro.nn.module import Module

        class Mystery(Module):
            def forward(self, x):
                return x

        model = _model()
        model.features = Mystery()  # the lowerer rejects unknown modules
        with pytest.raises(ValueError, match="lower"):
            _replica_server(model, num_replicas=1)


@pytest.mark.slow
class TestReplicaFaultInjection:
    def test_sigkill_mid_traffic_loses_at_most_the_inflight_window(self):
        model = _model()
        xs = _inputs(60, seed=7)
        # threshold 0: nothing exits early, every request runs the full
        # horizon — a long, deterministic backlog to crash into.
        reference = _oracle_decisions(model, xs, threshold=0.0)
        before = _arena_segments()
        window = 3
        server = _replica_server(
            model, threshold=0.0, num_replicas=2, batch_width=window,
            queue_capacity=len(xs),
        ).start()
        victim = server.replicas.processes[0]
        try:
            futures = [server.submit(x) for x in xs]
            deadline = time.monotonic() + 30.0
            while server.telemetry.completed < 2:
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("no completions before fault injection")
                time.sleep(0.005)
            os.kill(victim.pid, signal.SIGKILL)

            completed, crashed = {}, []
            for index, future in enumerate(futures):
                try:
                    result = future.result(timeout=60.0)
                    completed[index] = (result.prediction, result.exit_timestep)
                except ReplicaCrashError:
                    crashed.append(index)
        finally:
            server.shutdown(drain=True)

        # Every client got an answer (no stranded futures) and the blast
        # radius is bounded by the victim's in-flight window.
        assert len(completed) + len(crashed) == len(xs)
        assert len(crashed) <= window
        # The survivor kept serving the backlog...
        assert len(completed) >= len(xs) - window
        # ...decision-exact versus the sequential oracle.
        for index, decision in completed.items():
            assert decision == reference[index], f"request {index}"
        # And the crash did not pin the arena.
        assert _arena_segments() <= before, "arena leaked past drain"
        assert server.stats()["live_replicas"] == 0.0

    def test_all_replicas_dead_fails_queued_clients_typed(self):
        model = _model()
        xs = _inputs(32, seed=13)
        server = _replica_server(
            model, threshold=0.0, num_replicas=2, batch_width=2,
            queue_capacity=len(xs),
        ).start()
        try:
            futures = [server.submit(x) for x in xs]
            for process in server.replicas.processes:
                os.kill(process.pid, signal.SIGKILL)
            outcomes = []
            for future in futures:
                try:
                    future.result(timeout=60.0)
                    outcomes.append("done")
                except ReplicaCrashError:
                    outcomes.append("crash")
                except ServerClosedError:  # pragma: no cover - unexpected here
                    outcomes.append("closed")
            # Nobody hangs; the queue was closed and drained with the typed
            # error, so everything not already served reports the crash.
            assert len(outcomes) == len(xs)
            assert "crash" in outcomes
            assert all(outcome in ("done", "crash") for outcome in outcomes)
            # New submissions are refused instead of queueing into the void.
            with pytest.raises(ServerClosedError):
                server.submit(xs[0])
        finally:
            server.shutdown(drain=True)
        assert server.replicas.live_replicas == 0

    def test_crash_during_drain_still_releases_arena(self):
        model = _model()
        xs = _inputs(30, seed=17)
        before = _arena_segments()
        server = _replica_server(
            model, threshold=0.0, num_replicas=2, batch_width=3,
            queue_capacity=len(xs),
        ).start()
        futures = [server.submit(x) for x in xs]
        os.kill(server.replicas.processes[1].pid, signal.SIGKILL)
        server.shutdown(drain=True)
        resolved = 0
        for future in futures:
            try:
                future.result(timeout=10.0)
                resolved += 1
            except (ReplicaCrashError, ServerClosedError):
                resolved += 1
        assert resolved == len(xs)
        assert _arena_segments() <= before, "arena leaked past drain"
