"""Stress test: graceful drain under concurrent load, no request lost or doubled.

Several client threads hammer a small server (narrow batch, shallow queue, a
policy that produces mixed exit timesteps) while the main thread closes the
door mid-traffic.  Mid-horizon admissions and slot compaction are happening
constantly under that regime, which is exactly where an accounting bug —
a request dropped during compaction, a future resolved twice during a
splice — would surface.

The invariant under test: every submitted request is either *completed
exactly once* (its future resolves with a result, counted once by
telemetry) or *rejected exactly once* (the submitter saw
``ServerClosedError`` / ``QueueFullError``); the two sets partition the
offered load, and after drain the server holds no residue.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import EntropyExitPolicy
from repro.serve import QueueFullError, Server, ServerClosedError
from repro.snn import spiking_vgg
from repro.utils import seed_everything

pytestmark = pytest.mark.slow

NUM_THREADS = 4
REQUESTS_PER_THREAD = 40
BATCH_WIDTH = 3
QUEUE_CAPACITY = 8


def _spiky_model():
    """Untrained but actually-firing model with a spread of exit timesteps."""
    seed_everything(77)
    model = spiking_vgg("tiny", num_classes=6, input_size=8, default_timesteps=4)
    for name, parameter in model.named_parameters():
        if name.startswith("classifier"):
            parameter.data = parameter.data * np.float32(25.0)
    return model


class _Client(threading.Thread):
    """Closed-loop submitter recording one terminal outcome per request."""

    def __init__(self, server, inputs, labels, offset):
        super().__init__(daemon=True)
        self.server = server
        self.inputs = inputs
        self.labels = labels
        self.offset = offset
        self.futures = []  # (expected_label, response)
        self.rejected = 0

    def run(self):
        for index in range(REQUESTS_PER_THREAD):
            sample = (self.offset + index) % self.inputs.shape[0]
            try:
                response = self.server.submit(
                    self.inputs[sample],
                    label=int(self.labels[sample]),
                    block=True,
                    timeout=5.0,
                )
            except (ServerClosedError, QueueFullError):
                self.rejected += 1
            else:
                self.futures.append((int(self.labels[sample]), response))


def test_graceful_drain_under_concurrent_load():
    model = _spiky_model()
    rng = np.random.default_rng(123)
    inputs = rng.random((32, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 6, size=32)

    server = Server(
        model,
        EntropyExitPolicy(0.9),
        batch_width=BATCH_WIDTH,
        queue_capacity=QUEUE_CAPACITY,
    ).start()

    clients = [
        _Client(server, inputs, labels, offset=i * 7) for i in range(NUM_THREADS)
    ]
    for client in clients:
        client.start()

    # Close the door once a good chunk of traffic has been accepted, while
    # clients are still submitting: the race between submit() and close() is
    # the scenario under test.
    while server.telemetry.completed < (NUM_THREADS * REQUESTS_PER_THREAD) // 3:
        time.sleep(0.001)
    server.drain(timeout=60.0)
    for client in clients:
        client.join(timeout=60.0)
        assert not client.is_alive(), "client thread wedged after drain"

    # ---------------- accounting invariants ---------------- #
    offered = NUM_THREADS * REQUESTS_PER_THREAD
    accepted = sum(len(client.futures) for client in clients)
    rejected = sum(client.rejected for client in clients)
    assert accepted + rejected == offered

    # Every accepted request completed exactly once, with a coherent result.
    results = []
    for client in clients:
        for expected_label, response in client.futures:
            assert response.done(), "drain returned but a future is unresolved"
            result = response.result(timeout=0.0)
            assert result.label == expected_label
            assert 1 <= result.exit_timestep <= 4
            results.append(result)
    assert len(results) == accepted

    # No double completion: ids unique, telemetry agrees with the futures.
    request_ids = [result.request_id for result in results]
    assert len(set(request_ids)) == len(request_ids)
    assert server.telemetry.completed == accepted

    # No residue: engine drained, queue empty and closed.
    for batcher in server.batchers:
        assert batcher.engine.idle
    assert server.queue.depth() == 0
    assert server.queue.closed

    # The regime really exercised continuous batching: exits were mixed
    # (compaction) and more requests flowed than slots exist (admissions
    # mid-horizon).
    exit_timesteps = {result.exit_timestep for result in results}
    assert len(exit_timesteps) >= 2, "policy produced uniform exits; stress degenerate"
    assert accepted > BATCH_WIDTH


def test_drain_race_with_rejected_submitters_leaves_clean_server():
    """Submissions that lose the race to close() must fail fast, not hang."""
    model = _spiky_model()
    rng = np.random.default_rng(5)
    inputs = rng.random((8, 3, 8, 8)).astype(np.float32)

    server = Server(
        model, EntropyExitPolicy(0.9), batch_width=2, queue_capacity=4
    ).start()
    barrier = threading.Barrier(3)
    outcomes = []

    def late_submitter():
        barrier.wait()
        try:
            response = server.submit(inputs[0], block=True, timeout=2.0)
            outcomes.append(("accepted", response))
        except (ServerClosedError, QueueFullError) as error:
            outcomes.append(("rejected", error))

    threads = [threading.Thread(target=late_submitter) for _ in range(2)]
    for thread in threads:
        thread.start()
    barrier.wait()  # submitters are in flight right as the drain begins
    server.drain(timeout=30.0)
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive()

    assert len(outcomes) == 2
    for kind, payload in outcomes:
        if kind == "accepted":
            assert payload.result(timeout=5.0).exit_timestep >= 1
    assert server.queue.depth() == 0
