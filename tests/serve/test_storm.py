"""Overload resilience: storm-guard FSM, brown-out, deadlines, and epochs.

The contracts pinned here:

1. **FSM semantics** — immediate escalation (a vertical load edge may skip
   WARN), hysteretic stepwise recovery (``cooldown`` consecutive calm
   evaluations per level, calm = well below the *current* entry watermark),
   and priority-class admission (WARN sheds LOW, STORM admits only HIGH).
2. **Epoch stamping** — every submission carries a frozen
   :class:`ThresholdEpoch`; the engine evaluates each slot under its stamped
   knobs, so a completed request's recorded threshold is *provably* the one
   that made the decision, on threads and process replicas alike.  This
   closes the PR 5 caveat: moving-threshold traces are now replayable and
   bitwise-verifiable.
3. **Deterministic storm arc** — under a fake clock, a calm → flood → drain
   scenario walks NORMAL → STORM → NORMAL with monotone shed-by-class,
   brown-out-stamped completions bitwise-equal to the Tensor oracle under
   the aggressive knobs, deadline-bounded latency for everything accepted,
   and conservation of outcomes (no stranded futures).
4. **Queue regressions** — ``AdmissionQueue.get`` survives spurious wakeups
   (condition re-checked in a loop, remaining-deadline honored) and
   queue-full rejections are accounted exactly once (telemetry + WAL) on
   both the fail-fast and the blocking-timeout path.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import DynamicTimestepInference
from repro.core.policies import EntropyExitPolicy
from repro.serve import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AdaptiveThresholdController,
    AdmissionQueue,
    DeadlineExceededError,
    EpochLedger,
    LoadGenerator,
    QueueFullError,
    ReplicaCrashError,
    Server,
    StormConfig,
    StormPhase,
    StormShedError,
    StormState,
    TraceRecorder,
    TraceReplayer,
    load_trace,
    priority_cycle,
    request_stream,
    storm_phases,
)
from repro.serve.storm import StormGuard
from repro.snn import spiking_vgg
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10
THRESHOLD = 0.5


def _model(seed=47):
    seed_everything(seed)
    model = spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS,
    ).eval()
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(25.0)
    return model


def _inputs(batch, seed=3):
    rng = np.random.default_rng(seed)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _oracle(model, xs, threshold, horizon=TIMESTEPS):
    """Sequential Tensor-oracle decisions under explicit knobs."""
    logits = model.forward(xs, TIMESTEPS).cumulative_numpy()
    return DynamicTimestepInference(
        policy=EntropyExitPolicy(threshold), max_timesteps=horizon
    ).infer_from_logits(logits[:horizon])


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class _StubQueue:
    def __init__(self, capacity=10, depth=0):
        self.capacity = capacity
        self._depth = depth

    def depth(self):
        return self._depth


class _StubTelemetry:
    def __init__(self, p95=None):
        self.p95 = p95
        self.states = []

    def recent_p95(self):
        return self.p95

    def record_storm_state(self, code):
        self.states.append(code)


def _guard(depth=0, capacity=10, p95=None, **config):
    clock = FakeClock()
    queue = _StubQueue(capacity=capacity, depth=depth)
    telemetry = _StubTelemetry(p95=p95)
    guard = StormGuard(queue, telemetry, config=StormConfig(**config),
                       clock=clock)
    return guard, queue, telemetry, clock


# --------------------------------------------------------------------------- #
class TestStormFSM:
    def test_vertical_load_edge_escalates_straight_to_storm(self):
        guard, queue, telemetry, _ = _guard(depth=0, capacity=10,
                                            queue_warn=0.3, queue_storm=0.8)
        assert guard.observe() == StormState.NORMAL
        queue._depth = 9  # 0.9 >= queue_storm: skip WARN entirely
        assert guard.observe() == StormState.STORM
        assert telemetry.states == [2]

    def test_recovery_is_stepwise_and_hysteretic(self):
        guard, queue, _, _ = _guard(depth=9, capacity=10, cooldown=3,
                                    queue_warn=0.3, queue_storm=0.8,
                                    exit_fraction=0.5)
        assert guard.observe() == StormState.STORM
        # Below storm entry but NOT below exit_fraction * entry (0.5*0.8=0.4):
        # pressure dropped, yet the evaluation is not calm — no countdown.
        queue._depth = 5
        for _ in range(10):
            assert guard.observe() == StormState.STORM
        # Calm (depth 0.1 < 0.4): cooldown evals step down ONE level only.
        queue._depth = 1
        assert guard.observe() == StormState.STORM
        assert guard.observe() == StormState.STORM
        assert guard.observe() == StormState.WARN
        # And the countdown restarts for WARN -> NORMAL (calm vs 0.5*0.3).
        assert guard.observe() == StormState.WARN
        assert guard.observe() == StormState.WARN
        assert guard.observe() == StormState.NORMAL

    def test_calm_counter_resets_on_a_pressure_blip(self):
        guard, queue, _, _ = _guard(depth=9, capacity=10, cooldown=2,
                                    queue_warn=0.3, queue_storm=0.8)
        assert guard.observe() == StormState.STORM
        queue._depth = 0
        guard.observe()  # calm #1
        queue._depth = 5  # blip above exit watermark resets the countdown
        guard.observe()
        queue._depth = 0
        guard.observe()  # calm #1 again
        assert guard.state == StormState.STORM
        guard.observe()  # calm #2 -> step down
        assert guard.state == StormState.WARN

    def test_min_interval_rate_limits_evaluations(self):
        guard, queue, _, clock = _guard(depth=9, capacity=10,
                                        min_interval=1.0)
        assert guard.observe() == StormState.STORM
        queue._depth = 0
        # Same instant: evaluation skipped, state frozen.
        for _ in range(5):
            guard.observe()
        assert guard.state == StormState.STORM
        clock.advance(1.5)
        guard.observe()
        assert guard._calm == 1  # the next eval actually ran

    def test_p95_signal_drives_the_fsm_when_a_target_is_known(self):
        guard, _, _, _ = _guard(depth=0, capacity=10, p95=0.4,
                                target_p95=0.1, p95_warn=1.5, p95_storm=3.0)
        assert guard.observe() == StormState.STORM  # ratio 4.0 >= 3.0
        guard2, _, _, _ = _guard(depth=0, capacity=10, p95=0.2,
                                 target_p95=0.1)
        assert guard2.observe() == StormState.WARN  # ratio 2.0 >= 1.5

    def test_admission_by_priority_class(self):
        guard, queue, _, _ = _guard(depth=0, capacity=10,
                                    queue_warn=0.3, queue_storm=0.8)
        for priority in (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW):
            guard.admit(priority)  # NORMAL admits everything
        queue._depth = 4
        guard.observe()
        assert guard.state == StormState.WARN
        guard.admit(PRIORITY_HIGH)
        guard.admit(PRIORITY_NORMAL)
        with pytest.raises(StormShedError) as info:
            guard.admit(PRIORITY_LOW)
        assert info.value.state == StormState.WARN
        assert info.value.priority == PRIORITY_LOW
        assert isinstance(info.value, QueueFullError)  # backpressure-compatible
        queue._depth = 9
        guard.observe()
        guard.admit(PRIORITY_HIGH)
        for priority in (PRIORITY_NORMAL, PRIORITY_LOW):
            with pytest.raises(StormShedError):
                guard.admit(priority)

    def test_effective_knobs_brown_out_only_under_storm(self):
        guard, queue, _, _ = _guard(depth=0, capacity=10,
                                    queue_storm=0.8, horizon_cap=2,
                                    brownout_threshold=0.9)
        assert guard.effective(0.5) == (0.5, None, False)
        queue._depth = 9
        guard.observe()
        assert guard.effective(0.5) == (0.9, 2, True)

    def test_brownout_threshold_falls_back_to_controller_bound(self):
        policy = EntropyExitPolicy(0.5)
        controller = AdaptiveThresholdController(
            policy=policy, target_p95_latency=0.1,
            min_threshold=0.2, max_threshold=0.8,
        )
        guard = StormGuard(_StubQueue(), _StubTelemetry(),
                           controller=controller, policy=policy)
        assert guard.brownout_threshold() == 0.8  # aggressive_is_higher
        controller.aggressive_is_higher = False
        assert guard.brownout_threshold() == 0.2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StormConfig(queue_warn=0.9, queue_storm=0.5)
        with pytest.raises(ValueError):
            StormConfig(exit_fraction=0.0)
        with pytest.raises(ValueError):
            StormConfig(cooldown=0)
        with pytest.raises(ValueError):
            StormConfig(horizon_cap=0)


# --------------------------------------------------------------------------- #
class TestLoadgenStormProfile:
    def test_storm_phases_shape(self):
        phases = storm_phases(10.0, storm_multiplier=4.0, warmup=1.0,
                              storm=2.0, recovery=3.0)
        assert [p.rate for p in phases] == [10.0, 40.0, 10.0]
        assert [p.duration for p in phases] == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            storm_phases(0.0)
        with pytest.raises(ValueError):
            storm_phases(10.0, storm_multiplier=1.0)

    def test_arrival_offsets_are_piecewise_constant(self):
        generator = LoadGenerator(
            object.__new__(Server),  # offsets don't touch the server
            phases=[StormPhase(1.0, 10.0), StormPhase(0.5, 40.0)],
        )
        offsets = generator._arrival_offsets()
        first = [next(offsets) for _ in range(34)]
        assert sum(1 for t in first if t < 1.0) == 10
        assert sum(1 for t in first if 1.0 <= t < 1.5) == 20
        # Past the schedule the final rate continues: spacing 1/40.
        assert first[31] - first[30] == pytest.approx(0.025)
        assert all(b > a for a, b in zip(first, first[1:]))

    def test_priority_cycle_is_deterministic(self):
        import itertools
        a = list(itertools.islice(priority_cycle(), 12))
        b = list(itertools.islice(priority_cycle(), 12))
        assert a == b
        assert a[:4] == [PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_NORMAL,
                         PRIORITY_LOW]
        uniform = list(itertools.islice(
            priority_cycle({PRIORITY_HIGH: 1, PRIORITY_LOW: 1}), 4))
        assert uniform == [PRIORITY_HIGH, PRIORITY_LOW] * 2
        with pytest.raises(ValueError):
            next(priority_cycle({}))

    def test_generator_rejects_conflicting_pacing(self):
        with pytest.raises(ValueError):
            LoadGenerator(object.__new__(Server), rate=10.0,
                          phases=[StormPhase(1.0, 10.0)])
        with pytest.raises(ValueError):
            LoadGenerator(object.__new__(Server), phases=[])
        with pytest.raises(ValueError):
            LoadGenerator(object.__new__(Server), deadline=0.0)


# --------------------------------------------------------------------------- #
class TestQueueGetWaitLoop:
    """Regression: ``get`` used a single ``Condition.wait`` outside a loop, so
    a spurious wakeup (or a notify raced away by another consumer) returned
    None long before the timeout."""

    def test_spurious_wakeup_does_not_cut_the_timeout_short(self):
        queue = AdmissionQueue(capacity=2)

        def poke():
            time.sleep(0.05)
            with queue._not_empty:
                queue._not_empty.notify_all()  # wake without an item

        thread = threading.Thread(target=poke)
        thread.start()
        start = time.monotonic()
        assert queue.get(timeout=0.4) is None
        elapsed = time.monotonic() - start
        thread.join()
        # The whole timeout was honored despite the mid-wait wakeup.
        assert elapsed >= 0.3

    def test_item_arriving_after_spurious_wakeup_is_delivered(self):
        queue = AdmissionQueue(capacity=2)
        from repro.serve import Request, Response
        request = Request(request_id=1, inputs=np.zeros((1,), np.float32))

        def poke_then_put():
            with queue._not_empty:
                queue._not_empty.notify_all()
            time.sleep(0.05)
            queue.put(request, Response(), block=False)

        thread = threading.Thread(target=poke_then_put)
        thread.start()
        item = queue.get(timeout=2.0)
        thread.join()
        assert item is not None and item[0].request_id == 1

    def test_closed_queue_still_returns_none_immediately(self):
        queue = AdmissionQueue(capacity=2)
        queue.close()
        start = time.monotonic()
        assert queue.get(timeout=1.0) is None
        assert time.monotonic() - start < 0.5


# --------------------------------------------------------------------------- #
class TestControllerHistoryBound:
    def _controller(self, **kwargs):
        return AdaptiveThresholdController(
            policy=EntropyExitPolicy(0.5), target_p95_latency=0.1,
            min_threshold=0.1, max_threshold=0.9, **kwargs)

    def test_history_is_bounded_by_the_limit(self):
        controller = self._controller(history_limit=8)
        for _ in range(50):
            controller.observe_p95(0.2)
        assert len(controller.history) == 8
        # The retained tail is the most recent decisions.
        assert all(p95 == 0.2 for p95, _ in controller.history)

    def test_default_limit_caps_a_long_run(self):
        controller = self._controller()
        assert controller.history.maxlen == 4096

    def test_none_disables_the_cap(self):
        controller = self._controller(history_limit=None)
        for _ in range(5000):
            controller.observe_p95(0.2)
        assert len(controller.history) == 5000

    def test_invalid_limit_raises(self):
        with pytest.raises(ValueError):
            self._controller(history_limit=0)


# --------------------------------------------------------------------------- #
def _manual_server(model, *, clock=None, capacity=16, batch_width=2,
                   storm=None, trace=None, threshold=THRESHOLD):
    """A 1-worker server driven by hand (no threads): submissions go through
    the full admission path, service happens via ``batchers[0].run_once``."""
    server = Server(
        model, EntropyExitPolicy(threshold), max_timesteps=TIMESTEPS,
        batch_width=batch_width, queue_capacity=capacity, num_workers=1,
        use_runtime=True, clock=clock or time.monotonic, storm=storm,
        trace=trace,
    )
    server._started = True  # manual drive: no worker threads
    return server


class TestQueueFullShedAccounting:
    """Queue-full rejections reach the telemetry counter and the WAL reject
    line exactly once — on the fail-fast AND the blocking-timeout path."""

    def test_failfast_and_blocking_timeout_each_account_once(self, tmp_path):
        model = _model()
        clock = FakeClock()
        trace = TraceRecorder(str(tmp_path / "shed.trace"), meta={})
        server = _manual_server(model, clock=clock, capacity=2, trace=trace)
        xs = _inputs(4)
        server.submit(xs[0])
        server.submit(xs[1])  # queue now full
        with pytest.raises(QueueFullError):
            server.submit(xs[2], block=False)
        assert server.telemetry.snapshot()["rejected"] == 1.0
        assert trace.rejections_written == 1
        # Blocking path: the fake clock never advances inside wait(), so
        # pre-expire the deadline — put() must take the timeout branch.
        with pytest.raises(QueueFullError):
            server.submit(xs[3], block=True, timeout=-1.0)
        assert server.telemetry.snapshot()["rejected"] == 2.0
        assert trace.rejections_written == 2
        server.queue.close()
        server.queue.drain_pending()
        trace.close()
        loaded = load_trace(str(tmp_path / "shed.trace"))
        assert len(loaded.rejections) == 2


class TestDeadlineEnforcement:
    def test_expired_request_is_dropped_at_dispatch(self, tmp_path):
        model = _model()
        clock = FakeClock()
        trace = TraceRecorder(str(tmp_path / "deadline.trace"), meta={})
        server = _manual_server(model, clock=clock, trace=trace)
        xs = _inputs(2)
        fresh = server.submit(xs[0], deadline=10.0)
        doomed = server.submit(xs[1], deadline=0.5)
        clock.advance(1.0)  # past the second deadline, inside the first
        batcher = server.batchers[0]
        for _ in range(TIMESTEPS + 1):
            batcher.run_once()
        assert fresh.result(timeout=0) is not None
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=0)
        assert server.telemetry.deadline_drops_by_class == {PRIORITY_NORMAL: 1}
        assert server.telemetry.snapshot()["deadline_dropped"] == 1.0
        trace.close()
        loaded = load_trace(str(tmp_path / "deadline.trace"))
        assert [r.get("reason") for r in loaded.rejections] == ["deadline"]


# --------------------------------------------------------------------------- #
class TestEpochStamping:
    def test_ledger_bumps_only_on_knob_change(self):
        ledger = EpochLedger()
        first = ledger.stamp(0.5)
        again = ledger.stamp(0.5)
        assert first.epoch == again.epoch == 0
        moved = ledger.stamp(0.7)
        assert moved.epoch == 1
        capped = ledger.stamp(0.7, horizon=2)
        assert capped.epoch == 2
        assert ledger.stamp(0.7, horizon=2).epoch == 2

    def test_midrun_threshold_change_is_per_request_exact(self):
        """THE PR 5 regression: a threshold moved after submission must not
        retroactively change an in-flight request's decision or its recorded
        threshold."""
        model = _model()
        xs = _inputs(6)
        theta0, theta1 = 0.3, 0.9
        expected0 = _oracle(model, xs[:3], theta0)
        expected1 = _oracle(model, xs[3:], theta1)
        server = _manual_server(model, threshold=theta0, batch_width=6)
        early = [server.submit(x) for x in xs[:3]]
        # Knob moves while the first half is queued but unserved: the stamps
        # decide, not the live policy at service time.
        server.policy.threshold = theta1
        late = [server.submit(x) for x in xs[3:]]
        batcher = server.batchers[0]
        for _ in range(TIMESTEPS + 2):
            batcher.run_once()
        for i, response in enumerate(early):
            result = response.result(timeout=0)
            assert result.threshold == theta0
            assert result.epoch == 0
            assert (result.prediction, result.exit_timestep) == (
                int(expected0.predictions[i]), int(expected0.exit_timesteps[i]))
        for i, response in enumerate(late):
            result = response.result(timeout=0)
            assert result.threshold == theta1
            assert result.epoch == 1
            assert (result.prediction, result.exit_timestep) == (
                int(expected1.predictions[i]), int(expected1.exit_timesteps[i]))

    def test_explicit_pin_overrides_live_knob_and_horizon(self):
        model = _model()
        xs = _inputs(3)
        pinned = _oracle(model, xs, 0.05, horizon=2)
        server = _manual_server(model, threshold=0.9, batch_width=3)
        responses = [server.submit(x, threshold=0.05, horizon=2) for x in xs]
        batcher = server.batchers[0]
        for _ in range(TIMESTEPS + 1):
            batcher.run_once()
        for i, response in enumerate(responses):
            result = response.result(timeout=0)
            assert result.threshold == 0.05
            assert result.horizon == 2
            assert result.exit_timestep <= 2
            assert (result.prediction, result.exit_timestep) == (
                int(pinned.predictions[i]), int(pinned.exit_timesteps[i]))


def _record_moving_threshold(model, xs, path, *, num_workers=1,
                             num_replicas=0, theta0=0.3, theta1=0.9):
    """Record a trace while the live threshold moves mid-run; returns
    (trace, results keyed by request order)."""
    recorder = TraceRecorder(str(path), meta={
        "threshold": theta0, "max_timesteps": TIMESTEPS})
    policy = EntropyExitPolicy(theta0)
    server = Server(
        model, policy, max_timesteps=TIMESTEPS, batch_width=3,
        queue_capacity=len(xs), num_workers=num_workers,
        num_replicas=num_replicas, use_runtime=True, trace=recorder,
    ).start()
    try:
        half = len(xs) // 2
        first = [server.submit(x) for x in xs[:half]]
        results = [f.result(timeout=60.0) for f in first]
        policy.threshold = theta1
        second = [server.submit(x) for x in xs[half:]]
        results += [f.result(timeout=60.0) for f in second]
    finally:
        server.shutdown(drain=True)
        recorder.close()
    return load_trace(str(path)), results


class TestEpochConsistencyMatrix:
    """Acceptance: across {1,2 workers} x {1,2 replicas}, every completed
    request's recorded threshold bitwise-matches the epoch it executed
    under, and the replayer verifies the moving-threshold trace."""

    COMPOSITIONS = [
        dict(num_workers=1, num_replicas=0),
        dict(num_workers=2, num_replicas=0),
        dict(num_workers=1, num_replicas=1),
        dict(num_workers=1, num_replicas=2),
    ]

    @pytest.mark.parametrize("composition", COMPOSITIONS,
                             ids=["w1", "w2", "r1", "r2"])
    def test_moving_threshold_trace_is_epoch_exact_and_replayable(
            self, tmp_path, composition):
        model = _model()
        xs = _inputs(12)
        theta0, theta1 = 0.3, 0.9
        trace, results = _record_moving_threshold(
            model, xs, tmp_path / "moving.trace", theta0=theta0,
            theta1=theta1, **composition)
        # The recording itself: stamped, with both epochs represented, and
        # the recorded threshold equal to the stamped one per request.
        assert trace.fixed_threshold() is None
        assert trace.epoch_stamped()
        assert {r.threshold for r in trace.records} == {theta0, theta1}
        half = len(xs) // 2
        for i, result in enumerate(results):
            expected = theta0 if i < half else theta1
            assert result.threshold == expected, f"request {i}"
        by_id = {r.request_id: r for r in trace.records}
        for result in results:
            assert by_id[result.request_id].threshold == result.threshold
            assert by_id[result.request_id].epoch == result.epoch
        # Per-request oracle equality under the stamped knob: the engine
        # provably used the stamp, not whatever the live policy held.
        expected0 = _oracle(model, xs[:half], theta0)
        expected1 = _oracle(model, xs[half:], theta1)
        for i, result in enumerate(results):
            oracle, j = (expected0, i) if i < half else (expected1, i - half)
            assert (result.prediction, result.exit_timestep) == (
                int(oracle.predictions[j]), int(oracle.exit_timesteps[j])), \
                f"request {i}"
        # And the replayer no longer refuses the moving-threshold trace:
        # it pins each request to its recorded epoch and verifies bitwise.
        replayer = TraceReplayer(trace)
        replay_server = Server(
            model, EntropyExitPolicy(theta0), max_timesteps=TIMESTEPS,
            batch_width=3, queue_capacity=len(xs), use_runtime=True,
        ).start()
        try:
            report = replayer.replay(replay_server)
        finally:
            replay_server.shutdown(drain=True)
        assert report.exact, [str(m) for m in report.mismatches]

    def test_unstamped_moving_trace_is_still_refused(self, tmp_path):
        model = _model()
        xs = _inputs(4)
        trace, _ = _record_moving_threshold(model, xs,
                                            tmp_path / "strip.trace")
        for record in trace.records:
            record.epoch = None  # simulate a pre-epoch recording
        assert not trace.epoch_stamped()
        with pytest.raises(ValueError, match="epoch"):
            TraceReplayer(trace)


# --------------------------------------------------------------------------- #
class TestDeterministicStormArc:
    """Calm -> 4x flood -> drain under a fake clock: the full resilience
    story with zero wall-clock dependence."""

    def _run_arc(self):
        model = _model()
        clock = FakeClock()
        brownout_theta = 0.9
        config = StormConfig(
            queue_warn=0.25, queue_storm=0.5, cooldown=2,
            horizon_cap=TIMESTEPS - 1, brownout_threshold=brownout_theta,
        )
        server = _manual_server(model, clock=clock, capacity=16,
                                batch_width=2, storm=config)
        batcher = server.batchers[0]
        deadline = 6.0  # fake seconds; generous vs the service cadence below
        mix = [PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW]
        xs = _inputs(48, seed=11)
        outcomes = {"completed": [], "shed": [], "queue_full": 0,
                    "expired": 0}
        pending = []

        def submit(i):
            clock.advance(0.01)
            priority = mix[i % 3]
            try:
                response = server.submit(xs[i], block=False,
                                         priority=priority,
                                         deadline=deadline)
            except StormShedError as error:
                outcomes["shed"].append((priority, error.state))
            except QueueFullError:
                outcomes["queue_full"] += 1
            else:
                pending.append((i, priority, response))

        def serve_round():
            clock.advance(0.05)
            batcher.run_once()

        # Calm phase: arrivals at service pace keep the FSM quiet.
        for i in range(6):
            submit(i)
            serve_round()
        assert server.storm.state == StormState.NORMAL
        # Flood: 30 arrivals with no service at all — a vertical edge.
        for i in range(6, 36):
            submit(i)
        assert server.storm.state == StormState.STORM
        # Drain: service resumes at the calm cadence; remaining arrivals
        # trickle in and the FSM walks home through WARN.
        for i in range(36, 48):
            submit(i)
            serve_round()
        for _ in range(200):
            serve_round()
            if batcher.engine.idle and server.queue.depth() == 0:
                break
        for _ in range(5 * config.cooldown):
            if server.storm.observe() == StormState.NORMAL:
                break
        for i, priority, response in pending:
            try:
                result = response.result(timeout=0)
            except DeadlineExceededError:
                outcomes["expired"] += 1
            else:
                outcomes["completed"].append((i, priority, result))
        return model, server, config, outcomes, xs, brownout_theta

    def test_storm_arc_invariants(self):
        model, server, config, outcomes, xs, brownout_theta = self._run_arc()
        completed = outcomes["completed"]
        # 1. Conservation: every submission resolved somewhere.
        assert (len(completed) + len(outcomes["shed"])
                + outcomes["queue_full"] + outcomes["expired"]) == 48
        # 2. The FSM reached STORM and recovered to NORMAL.
        assert server.telemetry.storm_peak == StormState.CODES[StormState.STORM]
        assert server.storm.state == StormState.NORMAL
        assert server.telemetry.storm_transitions >= 3  # up, and back down
        # 3. Sheds are monotone by priority class (uniform mix).
        sheds = server.telemetry.storm_shed_by_class
        assert sheds.get(PRIORITY_HIGH, 0) == 0  # high is NEVER storm-shed
        assert (sheds.get(PRIORITY_LOW, 0) >= sheds.get(PRIORITY_NORMAL, 0)
                >= sheds.get(PRIORITY_HIGH, 0))
        assert sheds.get(PRIORITY_LOW, 0) > 0
        # 4. Brown-out engaged: STORM-admitted completions carry the
        #    aggressive stamp and respect the horizon cap...
        browned = [r for _, _, r in completed if r.brownout]
        assert browned, "no brown-out completion — STORM admitted nothing?"
        for result in browned:
            assert result.threshold == brownout_theta
            assert result.horizon == config.horizon_cap
            assert result.exit_timestep <= config.horizon_cap
        # ...and calm-phase completions kept the calibrated knob: recovery
        # is per-request exact, not a global mode flip.
        calm = [r for _, _, r in completed if not r.brownout]
        assert calm
        assert all(r.threshold == THRESHOLD for r in calm)
        # 5. Bitwise: every completion matches the Tensor oracle under its
        #    OWN stamped knobs.
        for index, _, result in completed:
            horizon = result.horizon or TIMESTEPS
            oracle = _oracle(model, xs[index:index + 1],
                             result.threshold, horizon=horizon)
            assert (result.prediction, result.exit_timestep) == (
                int(oracle.predictions[0]), int(oracle.exit_timesteps[0]))
        # 6. Deadline-bounded latency: dispatch drops anything that waited
        #    past its deadline, so accepted-request latency is bounded by
        #    deadline + service (fake-clock determinism makes this exact).
        service_bound = 0.05 * (TIMESTEPS + 1)
        for _, priority, result in completed:
            assert result.latency <= 6.0 + service_bound
        # 7. Expired requests were accounted.
        drops = server.telemetry.deadline_drops_by_class
        assert sum(drops.values()) == outcomes["expired"]


# --------------------------------------------------------------------------- #
class TestStormWithLoadGenerator:
    """Threaded end-to-end smoke: the LoadGenerator storm profile against a
    real server.  Only timing-free invariants are asserted."""

    def test_phase_profile_conserves_outcomes_and_aligns_indices(self):
        model = _model()
        server = Server(
            model, EntropyExitPolicy(THRESHOLD), max_timesteps=TIMESTEPS,
            batch_width=2, queue_capacity=8, num_workers=1,
            use_runtime=True,
            storm=StormConfig(queue_warn=0.25, queue_storm=0.5, cooldown=2),
        ).start()
        try:
            xs = _inputs(36, seed=5)
            stream = [(x, None) for x in xs]
            generator = LoadGenerator(
                server, block=False,
                phases=[StormPhase(0.012, 250.0), StormPhase(0.008, 3000.0),
                        StormPhase(0.02, 250.0)],
                priorities=priority_cycle({p: 1 for p in
                                           (PRIORITY_HIGH, PRIORITY_NORMAL,
                                            PRIORITY_LOW)}),
                deadline=5.0,
            )
            report = generator.run(iter(stream))
        finally:
            server.shutdown(drain=True)
        assert report.offered == 36
        assert (report.completed + report.dropped + report.expired
                == report.offered)
        assert len(report.accepted_indices) == len(report.results)
        assert report.accepted_indices == sorted(report.accepted_indices)
        # Drops by class sum to the total and high is never storm-shed more
        # than low under the uniform mix.
        assert sum(report.dropped_by_class.values()) == report.dropped
        sheds = server.telemetry.storm_shed_by_class
        assert sheds.get(PRIORITY_HIGH, 0) <= sheds.get(PRIORITY_LOW, 0)
        # Every completion is oracle-exact under its stamped knobs.
        for result, index in zip(report.results, report.accepted_indices):
            horizon = result.horizon or TIMESTEPS
            oracle = _oracle(model, xs[index:index + 1], result.threshold,
                             horizon=horizon)
            assert (result.prediction, result.exit_timestep) == (
                int(oracle.predictions[0]), int(oracle.exit_timesteps[0]))


# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestStormFaultInjection:
    def test_replica_death_mid_storm_resolves_every_future(self):
        """A replica SIGKILLed while the guard is in STORM: no stranded
        futures, the survivor drains the high-priority backlog, and the FSM
        still recovers."""
        model = _model()
        xs = _inputs(40, seed=9)
        config = StormConfig(queue_warn=0.2, queue_storm=0.4, cooldown=2,
                             brownout_threshold=0.9)
        server = Server(
            model, EntropyExitPolicy(0.0),  # full horizon: a real backlog
            max_timesteps=TIMESTEPS, batch_width=3, queue_capacity=20,
            num_replicas=2, use_runtime=True, storm=config,
        ).start()
        outcomes = {"done": 0, "crashed": 0, "shed": 0, "rejected": 0}
        pending = []
        try:
            # Flood to push the guard into STORM (observe runs per submit).
            for i, x in enumerate(xs[:24]):
                try:
                    pending.append(server.submit(
                        x, block=False,
                        priority=[PRIORITY_HIGH, PRIORITY_NORMAL,
                                  PRIORITY_LOW][i % 3]))
                except StormShedError:
                    outcomes["shed"] += 1
                except QueueFullError:
                    outcomes["rejected"] += 1
            assert server.storm.state != StormState.NORMAL
            os.kill(server.replicas.processes[0].pid, signal.SIGKILL)
            # Keep submitting high-priority traffic into the storm.
            for x in xs[24:]:
                try:
                    pending.append(server.submit(x, block=False,
                                                 priority=PRIORITY_HIGH))
                except (StormShedError, QueueFullError):
                    outcomes["shed"] += 1
            for response in pending:
                try:
                    response.result(timeout=60.0)
                    outcomes["done"] += 1
                except ReplicaCrashError:
                    outcomes["crashed"] += 1
        finally:
            server.shutdown(drain=True)
        total = sum(outcomes.values())
        assert total == len(xs)
        assert outcomes["done"] > 0  # the survivor kept serving
        # Post-drain the queue is empty: the guard can still walk home.
        for _ in range(5 * config.cooldown):
            if server.storm.observe() == StormState.NORMAL:
                break
        assert server.storm.state == StormState.NORMAL


# --------------------------------------------------------------------------- #
class TestStormGuardCanonicalReplay:
    """The session's canonical trace through a storm-*guarded* server: a calm
    guard (NORMAL throughout) must be decision-invisible — every replayed
    prediction and exit timestep bitwise equals the unguarded recording, and
    nothing is shed or browned out.  This is the admission-path analogue of
    the cross-composition gate: adding the guard to the stack cannot move a
    decision the guard never acted on."""

    def test_calm_guard_is_decision_invisible(self, canonical_trace):
        model, trace = canonical_trace
        config = StormConfig(queue_warn=0.9, queue_storm=0.95)
        server = Server(
            model, EntropyExitPolicy(THRESHOLD), max_timesteps=TIMESTEPS,
            batch_width=3, queue_capacity=64, use_runtime=True, storm=config,
        ).start()
        try:
            report = TraceReplayer(trace).replay(server, result_timeout=60.0)
        finally:
            server.shutdown(drain=True)
        assert report.exact, [str(m) for m in report.mismatches]
        assert server.storm.state == StormState.NORMAL
        assert server.telemetry.snapshot().get("shed", 0.0) == 0.0
        # The replay aggregates match the recording, guard or no guard.
        recorded = [r.exit_timestep for r in trace.records]
        assert report.mean_exit == pytest.approx(float(np.mean(recorded)))
        assert sum(report.exit_histogram) == len(trace.records)
