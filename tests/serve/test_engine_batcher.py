"""Continuous-batching engine: equivalence, mid-horizon splicing, occupancy.

The load-bearing property is that serving a stream through the continuous
batcher — slots freed by early exits refilled mid-horizon with fresh membrane
state — produces *bitwise* the same predictions and exit timesteps as the
cached-logits fast path (:meth:`DynamicTimestepInference.infer_from_logits`)
for every sample, because per-sample SNN dynamics are independent of batch
composition.
"""

import numpy as np
import pytest

from repro.core import DynamicTimestepInference, EntropyExitPolicy, StaticExitPolicy
from repro.data import SyntheticDVSConfig, make_dvs_like
from repro.serve import (
    AdmissionQueue,
    ContinuousBatcher,
    InferenceEngine,
    Request,
    Response,
)
from repro.snn import EventFrameEncoder, spiking_vgg
from repro.utils import seed_everything


def enqueue_dataset(dataset, count=None):
    queue = AdmissionQueue(capacity=len(dataset))
    responses = []
    for index in range(count or len(dataset)):
        response = Response()
        queue.put(
            Request(request_id=index, inputs=dataset.inputs[index],
                    label=int(dataset.labels[index])),
            response,
        )
        responses.append(response)
    queue.close()
    return queue, responses


def serve_results(model, policy, dataset, batch_width, max_timesteps=4, count=None):
    queue, responses = enqueue_dataset(dataset, count=count)
    engine = InferenceEngine(model, policy, max_timesteps=max_timesteps)
    batcher = ContinuousBatcher(engine, queue, batch_width=batch_width)
    completed = batcher.run_until_drained()
    assert completed == len(responses)
    return [response.result(timeout=1.0) for response in responses], engine


class TestServeEquivalence:
    @pytest.mark.parametrize("batch_width", [1, 3, 8])
    def test_bitwise_match_with_fast_path(
        self, trained_model, tiny_dataset, cumulative_logits, batch_width
    ):
        _, test = tiny_dataset
        threshold = 0.2
        results, _ = serve_results(
            trained_model, EntropyExitPolicy(threshold), test, batch_width
        )
        reference = DynamicTimestepInference(
            policy=EntropyExitPolicy(threshold), max_timesteps=4
        ).infer_from_logits(cumulative_logits["logits"], cumulative_logits["labels"])
        assert np.array_equal(
            [r.prediction for r in results], reference.predictions
        )
        assert np.array_equal(
            [r.exit_timestep for r in results], reference.exit_timesteps
        )
        np.testing.assert_allclose(
            [r.score for r in results], reference.scores, rtol=1e-6, atol=1e-7
        )

    def test_static_policy_runs_full_horizon(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        results, engine = serve_results(
            trained_model, StaticExitPolicy(), test, batch_width=4, count=12
        )
        assert all(r.exit_timestep == 4 for r in results)
        assert engine.total_sample_timesteps == 12 * 4

    def test_early_exit_reduces_forward_work(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        results, engine = serve_results(
            trained_model, EntropyExitPolicy(0.9), test, batch_width=4
        )
        horizon_work = len(results) * 4
        assert engine.total_sample_timesteps == sum(r.exit_timestep for r in results)
        assert engine.total_sample_timesteps < horizon_work

    def test_event_encoder_slots_use_their_own_timestep(self):
        """Mid-horizon splices must index the event stream per-slot, not globally."""
        seed_everything(21)
        dataset = make_dvs_like(
            SyntheticDVSConfig(
                num_classes=4, num_samples=18, num_frames=4, image_size=8, seed=13
            )
        )
        model = spiking_vgg(
            "tiny", num_classes=4, in_channels=dataset.sample_shape[-3],
            input_size=8, default_timesteps=4, encoder=EventFrameEncoder(),
        )
        policy = EntropyExitPolicy(0.85)
        results, _ = serve_results(model, policy, dataset, batch_width=3)
        chunks = [
            model.forward(dataset.inputs[start:start + 8], 4).cumulative_numpy()
            for start in range(0, len(dataset), 8)
        ]
        reference = DynamicTimestepInference(
            policy=EntropyExitPolicy(0.85), max_timesteps=4
        ).infer_from_logits(np.concatenate(chunks, axis=1))
        assert np.array_equal([r.prediction for r in results], reference.predictions)
        assert np.array_equal([r.exit_timestep for r in results], reference.exit_timesteps)


class TestContinuousBatching:
    def test_slots_refilled_mid_horizon(self, trained_model, tiny_dataset):
        """With width < stream length the batcher must splice requests in while
        earlier ones are still mid-horizon (full occupancy until the tail)."""
        _, test = tiny_dataset
        queue, responses = enqueue_dataset(test, count=20)
        engine = InferenceEngine(trained_model, EntropyExitPolicy(0.9), max_timesteps=4)
        batcher = ContinuousBatcher(engine, queue, batch_width=4)

        occupancies = []
        while queue.depth() or not engine.idle:
            batcher.run_once()
            occupancies.append(engine.active_count)
        assert all(response.done() for response in responses)
        # Full occupancy except while the tail drains.
        drained_tail = [o for o in occupancies if o < 4]
        assert occupancies[: len(occupancies) - len(drained_tail)] == [4] * (
            len(occupancies) - len(drained_tail)
        )
        # Strictly fewer steps than serial batches would need: with early exit
        # at threshold 0.9 most samples leave after 1-2 timesteps.
        assert engine.total_sample_timesteps < 20 * 4

    def test_batcher_prices_requests_on_cost_model(self, trained_model, tiny_dataset):
        class UnitCost:
            def energy(self, timesteps):
                return 2.0 * timesteps

            def latency(self, timesteps):
                return 0.5 * timesteps

        _, test = tiny_dataset
        queue, responses = enqueue_dataset(test, count=6)
        engine = InferenceEngine(trained_model, EntropyExitPolicy(0.5), max_timesteps=4)
        batcher = ContinuousBatcher(engine, queue, batch_width=3, cost_model=UnitCost())
        batcher.run_until_drained()
        for response in responses:
            result = response.result(timeout=1.0)
            assert result.energy == pytest.approx(2.0 * result.exit_timestep)
            assert result.edp == pytest.approx(result.energy * 0.5 * result.exit_timestep)

    def test_telemetry_histogram_matches_results(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        queue, responses = enqueue_dataset(test, count=16)
        engine = InferenceEngine(trained_model, EntropyExitPolicy(0.7), max_timesteps=4)
        batcher = ContinuousBatcher(engine, queue, batch_width=4)
        batcher.run_until_drained()
        results = [r.result(timeout=1.0) for r in responses]
        histogram = batcher.telemetry.exit_histogram(4)
        expected = np.bincount([r.exit_timestep for r in results], minlength=5)[1:]
        assert np.array_equal(histogram, expected)
        assert batcher.telemetry.snapshot()["completed"] == 16.0
