"""Adaptive threshold controller: SLA feedback stays inside calibrated bounds."""

import numpy as np
import pytest

from repro.core import EntropyExitPolicy
from repro.serve import AdaptiveThresholdController, Telemetry, calibrated_threshold_bounds
from repro.serve.request import RequestResult


def make_controller(threshold=0.2, low=0.05, high=0.6, target=0.1, **kwargs):
    policy = EntropyExitPolicy(threshold=threshold)
    controller = AdaptiveThresholdController(
        policy=policy,
        target_p95_latency=target,
        min_threshold=low,
        max_threshold=high,
        **kwargs,
    )
    return policy, controller


class TestAdaptiveThresholdController:
    def test_overload_raises_threshold_up_to_bound(self):
        policy, controller = make_controller()
        for _ in range(20):
            controller.observe_p95(10.0)  # way over the 0.1s SLA
        assert policy.threshold == pytest.approx(0.6)
        assert all(theta <= 0.6 for _, theta in controller.history)

    def test_headroom_lowers_threshold_down_to_bound(self):
        policy, controller = make_controller()
        for _ in range(20):
            controller.observe_p95(0.001)  # far below the SLA
        assert policy.threshold == pytest.approx(0.05)
        assert all(theta >= 0.05 for _, theta in controller.history)

    def test_deadband_keeps_threshold_stable(self):
        policy, controller = make_controller(threshold=0.2, target=0.1)
        for p95 in (0.095, 0.1, 0.105):
            controller.observe_p95(p95)
        assert policy.threshold == pytest.approx(0.2)

    def test_initial_threshold_clamped_into_bounds(self):
        policy, _ = make_controller(threshold=0.9, low=0.05, high=0.6)
        assert policy.threshold == pytest.approx(0.6)

    def test_inverted_direction_for_confidence_like_policies(self):
        policy, controller = make_controller(aggressive_is_higher=False)
        for _ in range(20):
            controller.observe_p95(10.0)
        assert policy.threshold == pytest.approx(0.05)

    def test_on_completion_adjusts_every_n_requests(self):
        policy, controller = make_controller(adjust_every=4)
        telemetry = Telemetry(window=16)
        for i in range(8):
            result = RequestResult(
                request_id=i, prediction=0, exit_timestep=1, score=0.0,
                arrival_time=0.0, start_time=0.0, finish_time=10.0,  # 10s latency
            )
            telemetry.record_completion(result)
            controller.on_completion(result, telemetry)
        # 8 completions / adjust_every=4 -> exactly two control decisions.
        assert len(controller.history) == 2
        assert policy.threshold > 0.2  # overloaded, moved toward aggressive bound

    def test_validation(self):
        with pytest.raises(ValueError):
            make_controller(low=0.0)
        with pytest.raises(ValueError):
            make_controller(target=0.0)
        with pytest.raises(ValueError):
            make_controller(step=0.9)


class TestCalibratedBounds:
    def test_bounds_ordered_and_from_sweep(self, cumulative_logits):
        low, high = calibrated_threshold_bounds(
            cumulative_logits["logits"], cumulative_logits["labels"],
            tight_tolerance=0.0, loose_tolerance=0.05,
        )
        assert 0 < low <= high <= 1.0

    def test_bounds_feed_controller(self, cumulative_logits):
        low, high = calibrated_threshold_bounds(
            cumulative_logits["logits"], cumulative_logits["labels"]
        )
        policy = EntropyExitPolicy(threshold=low)
        controller = AdaptiveThresholdController(
            policy=policy,
            target_p95_latency=0.05,
            min_threshold=low,
            max_threshold=max(high, low),
        )
        for _ in range(30):
            controller.observe_p95(1.0)
        assert low <= policy.threshold <= max(high, low)
