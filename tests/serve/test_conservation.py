"""Request conservation and failure accounting across serving compositions.

The invariant under test: every submitted request lands in **exactly one**
terminal counter, so

    submitted == completed + rejected + shed + deadline_drops

holds on every composition — thread workers and process replicas alike —
under a mixed success / shed-at-the-door / deadline-drop / crash workload.
The client-side outcome tally must equal the telemetry counters (no silent
under- or over-counting on either side), and every span a request ever
opened must be terminal after drain.

These tests pin three bugs fixed together with the ring-transport change:

* relayed admission rejections in replica mode resolved the client future
  but recorded nothing — replica mode under-counted ``rejected`` versus
  thread mode and broke conservation;
* failed requests (deadline drops, rejections, crash casualties) left their
  spans dangling open — ``open_spans()`` never converged to empty;
* one shared exception instance resolved many futures, racing concurrent
  ``result()`` re-raises on ``__traceback__`` mutation — each future now
  owns a distinct clone.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.serve import (
    AdmissionQueue,
    AdmissionRejectedError,
    DeadlineExceededError,
    InferenceEngine,
    QueueFullError,
    ReplicaCrashError,
    Request,
    Response,
    Server,
    SpanTracker,
    TraceRecorder,
    load_trace,
)
from repro.serve.request import clone_exception
from repro.snn import spiking_vgg
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10


def _model(seed=47):
    seed_everything(seed)
    model = spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS,
    ).eval()
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(25.0)
    return model


def _inputs(batch, seed=3):
    rng = np.random.default_rng(seed)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _deadline_total(telemetry):
    return sum(telemetry.deadline_drops_by_class.values())


def _assert_conserved(submitted, telemetry):
    total = (
        telemetry.completed + telemetry.rejected + telemetry.shed
        + _deadline_total(telemetry)
    )
    assert submitted == total, (
        f"conservation broken: {submitted} submitted vs "
        f"{telemetry.completed} completed + {telemetry.rejected} rejected + "
        f"{telemetry.shed} shed + {_deadline_total(telemetry)} deadline drops"
    )


# --------------------------------------------------------------------- #
# The conservation matrix
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "num_workers,num_replicas",
    [(1, 0), (2, 0), (0, 1), (0, 2)],
    ids=["1-worker", "2-workers", "1-replica", "2-replicas"],
)
def test_request_conservation_across_compositions(num_workers, num_replicas):
    """Mixed success / queue-full / guaranteed-deadline workload: the
    client-visible outcome of every future matches the telemetry counter it
    incremented, the conservation sum is exact, and no span stays open."""
    model = _model()
    spans = SpanTracker()
    kwargs = dict(num_replicas=num_replicas) if num_replicas else dict(
        num_workers=num_workers
    )
    # threshold 0: nothing exits early, so the backlog builds and the tiny
    # queue actually sheds — the workload genuinely mixes all three fates.
    server = Server(
        model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS,
        batch_width=2, queue_capacity=6, spans=spans, **kwargs,
    ).start()
    xs = _inputs(36)
    outcomes = {"completed": 0, "rejected": 0, "deadline": 0}
    futures = []
    try:
        for index in range(xs.shape[0]):
            # Every fifth request carries an already-expired deadline: if it
            # clears the door it MUST become a deadline drop, never a result.
            deadline = -1.0 if index % 5 == 3 else None
            try:
                futures.append(
                    server.submit(xs[index], block=False, deadline=deadline)
                )
            except QueueFullError:
                outcomes["rejected"] += 1
        for future in futures:
            try:
                future.result(timeout=60.0)
                outcomes["completed"] += 1
            except DeadlineExceededError:
                outcomes["deadline"] += 1
    finally:
        server.shutdown(drain=True)

    telemetry = server.telemetry
    # The workload exercised all three fates, not just completions.
    assert outcomes["completed"] > 0
    assert outcomes["rejected"] > 0
    assert outcomes["deadline"] > 0
    # Client-side tallies equal the server-side counters exactly.
    assert outcomes["completed"] == telemetry.completed
    assert outcomes["rejected"] == telemetry.rejected
    assert outcomes["deadline"] == _deadline_total(telemetry)
    assert telemetry.shed == 0
    _assert_conserved(xs.shape[0], telemetry)
    # Span terminality: nothing a worker ever touched is left open.
    assert spans.open_spans() == []


@pytest.mark.slow
def test_conservation_holds_through_replica_crash():
    """SIGKILL mid-traffic: crash casualties land in ``shed`` (and nowhere
    else), each carries its own exception instance, and the sum stays exact."""
    model = _model()
    spans = SpanTracker()
    xs = _inputs(40, seed=9)
    window = 3
    server = Server(
        model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS,
        batch_width=window, queue_capacity=len(xs), num_replicas=2,
        spans=spans,
    ).start()
    victim = server.replicas.processes[0]
    try:
        futures = [server.submit(x) for x in xs]
        deadline = time.monotonic() + 30.0
        while server.telemetry.completed < 2:
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail("no completions before fault injection")
            time.sleep(0.005)
        os.kill(victim.pid, signal.SIGKILL)
        completed = 0
        crash_errors = []
        for future in futures:
            try:
                future.result(timeout=60.0)
                completed += 1
            except ReplicaCrashError as error:
                crash_errors.append(error)
    finally:
        server.shutdown(drain=True)

    telemetry = server.telemetry
    assert completed == telemetry.completed
    assert len(crash_errors) == telemetry.shed
    assert len(crash_errors) <= window
    assert _deadline_total(telemetry) == 0
    _assert_conserved(len(xs), telemetry)
    # Concurrent waiters re-raise concurrently: one shared instance would
    # race on __traceback__; every future must own a distinct clone.
    assert len({id(error) for error in crash_errors}) == len(crash_errors)
    assert spans.open_spans() == []


# --------------------------------------------------------------------- #
# Relayed rejections are accounted (replica mode) — and thread mode agrees
# --------------------------------------------------------------------- #
def _rejection_accounting(tmp_path, **server_kwargs):
    model = _model()
    spans = SpanTracker()
    recorder = TraceRecorder(
        str(tmp_path / "wal.jsonl"),
        meta={"threshold": 0.5, "max_timesteps": TIMESTEPS},
    )
    server = Server(
        model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
        batch_width=2, spans=spans, trace=recorder, **server_kwargs,
    ).start()
    xs = _inputs(2)
    try:
        # One good request first: the engine pins the served sample shape,
        # so the malformed one is deterministically rejected at admission.
        server.submit(xs[0]).result(timeout=60.0)
        malformed = np.zeros(
            (3, IMAGE_SIZE + 2, IMAGE_SIZE + 2), dtype=np.float32
        )
        with pytest.raises(AdmissionRejectedError):
            server.submit(malformed).result(timeout=60.0)
    finally:
        server.shutdown(drain=True)
        recorder.close()
    telemetry = server.telemetry
    assert telemetry.completed == 1
    assert telemetry.rejected == 1, (
        "an engine rejection resolved the future without incrementing the "
        "rejected counter"
    )
    _assert_conserved(2, telemetry)
    assert spans.open_spans() == []
    trace = load_trace(str(tmp_path / "wal.jsonl"))
    assert len(trace.records) == 1
    assert len(trace.rejections) == 1, "rejection never reached the trace WAL"


def test_replica_relayed_rejection_is_recorded(tmp_path):
    """The ``_MSG_ERROR`` relay path: a rejection that happened inside the
    replica process must be recorded by the parent exactly like the
    thread-mode door records its own."""
    _rejection_accounting(tmp_path, num_replicas=1)


def test_thread_mode_engine_rejection_is_recorded(tmp_path):
    _rejection_accounting(tmp_path, num_workers=1)


# --------------------------------------------------------------------- #
# Per-future exception instances (unit pins)
# --------------------------------------------------------------------- #
def test_clone_exception_preserves_type_args_and_cause():
    cause = ValueError("root")
    error = ReplicaCrashError("replica 0 crashed")
    error.__cause__ = cause
    clone = clone_exception(error)
    assert clone is not error
    assert type(clone) is ReplicaCrashError
    assert clone.args == error.args
    assert clone.__cause__ is cause


def test_drain_pending_gives_each_future_its_own_exception():
    queue = AdmissionQueue(capacity=8)
    responses = [Response() for _ in range(3)]
    for index, response in enumerate(responses):
        queue.put(Request(request_id=index, inputs=np.zeros(1)), response)
    queue.close()
    assert queue.drain_pending(RuntimeError("shutting down")) == 3
    errors = []
    for response in responses:
        with pytest.raises(RuntimeError, match="shutting down"):
            response.result(timeout=1.0)
        try:
            response.result(timeout=1.0)
        except RuntimeError as error:
            errors.append(error)
    assert len({id(error) for error in errors}) == len(errors)


def test_admit_batch_rejection_gives_each_future_its_own_exception():
    model = _model()
    engine = InferenceEngine(
        model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS
    )
    good = _inputs(1)[0]
    bad = np.zeros((3, IMAGE_SIZE + 2, IMAGE_SIZE + 2), dtype=np.float32)
    admissions = [
        (Request(request_id=0, inputs=good), Response(), 0.0),
        (Request(request_id=1, inputs=bad), Response(), 0.0),
    ]
    with pytest.raises(AdmissionRejectedError):
        engine.admit_batch(admissions)
    errors = []
    for _, response, _ in admissions:
        try:
            response.result(timeout=1.0)
        except AdmissionRejectedError as error:
            errors.append(error)
    assert len(errors) == 2
    assert len({id(error) for error in errors}) == len(errors)
