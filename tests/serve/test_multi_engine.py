"""Multi-worker serving over one shared compiled plan — and the full
cross-composition matrix.

``Server(num_workers=N)`` runs N engines against the *same* model: the
lowered plan (op list, folded constants, stem memo) is compiled once through
the plan registry and shared read-only, while every worker keeps its own
executor state.  The tests pin the sharing itself, bitwise per-request
equivalence under real thread concurrency, the Tensor-oracle refusal, and the
abort-consistency contract: a replica failing mid-horizon must not disturb
its neighbours' trajectories, the shared registry, or the stem memo.

:class:`TestCrossCompositionMatrix` closes the loop over every scaling axis:
{1 thread, N threads, 1 process replica, N process replicas} x {burst,
steady} arrivals must all be decision-exact against the sequential oracle —
the per-sample batch invariance contract is composition-blind, so neither
the worker count, the worker *kind*, nor the arrival pattern may move a
prediction or an exit timestep (scores carry the documented 1e-6
cross-composition tolerance from BLAS GEMM blocking).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.runtime import plan_for
from repro.serve import (
    InferenceEngine,
    Request,
    Response,
    Server,
    ServerClosedError,
)
from repro.snn import spiking_vgg
from repro.snn.encoding import EventFrameEncoder
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10


def _model(encoder=None, seed=47):
    seed_everything(seed)
    kwargs = {"encoder": encoder} if encoder is not None else {}
    model = spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS, **kwargs,
    ).eval()
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(25.0)
    return model


def _inputs(batch, event=False, seed=3):
    rng = np.random.default_rng(seed)
    if event:
        return rng.random(
            (batch, TIMESTEPS + 1, 3, IMAGE_SIZE, IMAGE_SIZE)
        ).astype(np.float32)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _serve(model, xs, num_workers, batch_width=3, num_replicas=0, profile="burst"):
    server = Server(
        model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
        batch_width=batch_width, queue_capacity=len(xs),
        num_workers=num_workers, num_replicas=num_replicas,
        use_runtime=True,
    ).start()
    try:
        futures = []
        for x in xs:
            futures.append(server.submit(x))
            if profile == "steady":
                # Trickled arrivals: slots refill one by one, so every
                # worker sees constantly shifting batch compositions.
                time.sleep(0.002)
        results = [future.result(timeout=60.0) for future in futures]
    finally:
        server.shutdown(drain=True)
    return server, results


class TestSharedPlanServing:
    def test_workers_share_one_plan_with_private_state(self):
        model = _model()
        server = Server(
            model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS, num_workers=3,
            use_runtime=True,
        )
        engines = [batcher.engine for batcher in server.batchers]
        assert len(engines) == 3
        plans = {id(engine._executor.plan) for engine in engines}
        assert len(plans) == 1  # one compiled plan…
        assert engines[0]._executor.plan is plan_for(model)
        executors = {id(engine._executor) for engine in engines}
        assert len(executors) == 3  # …but per-worker executor state

    def test_two_workers_match_single_worker(self):
        """Concurrent workers stealing from one queue must not perturb any
        sample's *decisions*.  Worker assignment changes each step's batch
        composition, so scores get the same tolerance the suite already
        grants cross-composition references (BLAS GEMM blocking shifts the
        last float32 bits); predictions and exit timesteps stay exact."""
        model = _model()
        xs = _inputs(48)
        _, reference = _serve(model, xs, num_workers=1)
        _, concurrent = _serve(model, xs, num_workers=2)
        decisions = lambda rs: {
            r.request_id: (r.prediction, r.exit_timestep) for r in rs
        }
        assert decisions(concurrent) == decisions(reference)
        order = lambda rs: [r.score for r in sorted(rs, key=lambda r: r.request_id)]
        np.testing.assert_allclose(
            order(concurrent), order(reference), rtol=1e-6, atol=1e-7
        )

    @pytest.mark.skipif(
        os.environ.get("REPRO_STEM_CACHE_CAPACITY", "").strip() == "0",
        reason="stem memo disabled via REPRO_STEM_CACHE_CAPACITY=0",
    )
    def test_event_stream_workers_share_the_stem_memo(self):
        model = _model(encoder=EventFrameEncoder())
        xs = _inputs(24, event=True)
        # Two passes over the same clips: the second is pure replay and must
        # hit the memo that the first pass (across BOTH workers) filled.
        _, first = _serve(model, xs, num_workers=2)
        memo = plan_for(model).stem_cache
        assert len(memo) > 0
        hits_before = memo.hits
        _, second = _serve(model, xs, num_workers=2)
        assert memo.hits > hits_before
        by_id = lambda rs: {
            r.request_id % len(xs): (r.prediction, r.exit_timestep) for r in rs
        }
        assert by_id(first) == by_id(second)

    def test_oracle_path_refuses_shared_model(self):
        with pytest.raises(ValueError, match="extra_models"):
            Server(_model(), EntropyExitPolicy(0.5), num_workers=2, use_runtime=False)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="num_workers"):
            Server(_model(), EntropyExitPolicy(0.5), num_workers=0)


class TestCrossCompositionMatrix:
    COMPOSITIONS = (
        ("threads", 1),
        ("threads", 2),
        ("replicas", 1),
        ("replicas", 2),
    )
    PROFILES = ("burst", "steady")

    def test_every_composition_is_decision_exact(self):
        model = _model()
        xs = _inputs(24)
        policy = EntropyExitPolicy(0.5)

        # Sequential oracle: one engine, one request at a time.
        engine = InferenceEngine(model, policy, max_timesteps=TIMESTEPS,
                                 use_runtime=True)
        oracle = {}
        for index in range(xs.shape[0]):
            engine.admit(Request(request_id=index, inputs=xs[index]), Response(), 0.0)
            while not engine.idle:
                for sample in engine.step():
                    oracle[sample.request.request_id] = (
                        sample.prediction, sample.exit_timestep,
                    )

        reference_scores = None
        for mode, count in self.COMPOSITIONS:
            for profile in self.PROFILES:
                cell = f"{count} {mode} / {profile}"
                _, results = _serve(
                    model, xs,
                    num_workers=count if mode == "threads" else 1,
                    num_replicas=count if mode == "replicas" else 0,
                    profile=profile,
                )
                decisions = {
                    r.request_id % len(xs): (r.prediction, r.exit_timestep)
                    for r in results
                }
                assert decisions == oracle, f"decisions diverged at {cell}"
                scores = [
                    r.score
                    for r in sorted(results, key=lambda r: r.request_id % len(xs))
                ]
                if reference_scores is None:
                    reference_scores = scores
                else:
                    np.testing.assert_allclose(
                        scores, reference_scores, rtol=1e-6, atol=1e-7,
                        err_msg=f"scores drifted past tolerance at {cell}",
                    )


class TestReplicaAbortConsistency:
    def test_fail_active_leaves_neighbour_trajectories_intact(self):
        """Engine B aborting mid-horizon must not touch engine A's membranes
        (they share the model object) nor the shared plan registry."""
        model = _model()
        xs = _inputs(6)
        policy = EntropyExitPolicy(0.5)

        def run_alone():
            engine = InferenceEngine(model, policy, max_timesteps=TIMESTEPS,
                                     use_runtime=True)
            outcomes = {}
            for index in range(xs.shape[0]):
                engine.admit(Request(request_id=index, inputs=xs[index]), Response(), 0.0)
            while not engine.idle:
                for sample in engine.step():
                    outcomes[sample.request.request_id] = (
                        sample.prediction, sample.exit_timestep, sample.score,
                    )
            return outcomes

        reference = run_alone()
        plan_before = plan_for(model)

        survivor = InferenceEngine(model, policy, max_timesteps=TIMESTEPS,
                                   use_runtime=True)
        doomed = InferenceEngine(model, policy, max_timesteps=TIMESTEPS,
                                 use_runtime=True)
        for index in range(xs.shape[0]):
            survivor.admit(Request(request_id=index, inputs=xs[index]), Response(), 0.0)
        doomed_responses = [Response() for _ in range(3)]
        for index, response in enumerate(doomed_responses):
            doomed.admit(Request(request_id=100 + index, inputs=xs[index]), response, 0.0)

        survivor.step()  # survivor is mid-horizon…
        doomed.step()
        failed = doomed.fail_active(ServerClosedError("replica abort"))
        assert failed == 3
        for response in doomed_responses:
            with pytest.raises(ServerClosedError):
                response.result(timeout=0.1)
        assert doomed.idle and doomed.active_count == 0

        # …and finishes bitwise-identically despite the neighbour's abort.
        outcomes = {}
        while not survivor.idle:
            for sample in survivor.step():
                outcomes[sample.request.request_id] = (
                    sample.prediction, sample.exit_timestep, sample.score,
                )
        assert outcomes == reference
        assert plan_for(model) is plan_before  # registry untouched

    @pytest.mark.skipif(
        os.environ.get("REPRO_STEM_CACHE_CAPACITY", "").strip() == "0",
        reason="stem memo disabled via REPRO_STEM_CACHE_CAPACITY=0",
    )
    def test_fail_active_preserves_stem_memo_and_reuse_is_bitwise(self):
        """Aborts drop slot rows, not memo entries (pure content-keyed
        values), and a fresh session over the same clips still matches the
        Tensor oracle bit for bit."""
        model = _model(encoder=EventFrameEncoder())
        xs = _inputs(4, event=True)
        policy = EntropyExitPolicy(0.5)

        engine = InferenceEngine(model, policy, max_timesteps=TIMESTEPS,
                                 use_runtime=True)
        for index in range(xs.shape[0]):
            engine.admit(Request(request_id=index, inputs=xs[index]), Response(), 0.0)
        engine.step()
        memo = plan_for(model).stem_cache
        entries_before = len(memo)
        assert entries_before > 0
        engine.fail_active(ServerClosedError("abort"))
        assert len(memo) == entries_before  # no stale-row scrubbing needed

        def outcomes_for(use_runtime):
            fresh = InferenceEngine(
                model, policy, max_timesteps=TIMESTEPS, use_runtime=use_runtime
            )
            collected = {}
            for index in range(xs.shape[0]):
                fresh.admit(Request(request_id=index, inputs=xs[index]), Response(), 0.0)
            while not fresh.idle:
                for sample in fresh.step():
                    collected[sample.request.request_id] = (
                        sample.prediction, sample.exit_timestep, sample.score,
                    )
            return collected

        assert outcomes_for(True) == outcomes_for(False)

    def test_oracle_engine_abort_still_resets_model_state(self):
        """On the Tensor path the engine owns the model's LIF state, so the
        abort must clear it (fresh sessions start from zero membranes)."""
        model = _model()
        engine = InferenceEngine(
            model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS, use_runtime=False
        )
        xs = _inputs(2)
        engine.admit(Request(request_id=0, inputs=xs[0]), Response(), 0.0)
        engine.step()
        assert any(
            layer.membrane is not None for layer in model.lif_layers()
        )
        engine.fail_active(ServerClosedError("abort"))
        assert all(layer.membrane is None for layer in model.lif_layers())
