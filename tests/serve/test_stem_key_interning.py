"""Stem-memo key interning: hash once per request, not per row per step.

The event-stream stem memo used to build its keys from ``tobytes()`` of every
slot's encoded frame on every timestep — a full frame copy per row per step.
Keys are now interned at admission: one 128-bit content digest of the whole
clip, combined per step with the encoder's recorded-frame index.  These tests
pin the three things that must hold:

* the micro-regression itself — exactly ONE digest per admitted request,
  regardless of horizon length, burst size or batch composition;
* cache semantics survive the key change — replayed clips still hit across
  requests/engines, padded tail frames still dedupe within a clip;
* decisions and scores stay bitwise-identical to the Tensor oracle (the memo
  contract: caching may never cost a bit).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.runtime import plan_for
from repro.serve import InferenceEngine, Request, Response
from repro.snn import spiking_vgg
from repro.snn.encoding import EventFrameEncoder
from repro.utils import seed_everything

TIMESTEPS = 5
NUM_CLASSES = 6
IMAGE_SIZE = 10

memo_enabled = pytest.mark.skipif(
    os.environ.get("REPRO_STEM_CACHE_CAPACITY", "").strip() == "0",
    reason="stem memo disabled via REPRO_STEM_CACHE_CAPACITY=0",
)


def _model(seed=47):
    seed_everything(seed)
    return spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS, encoder=EventFrameEncoder(),
    ).eval()


def _clips(batch, frames=TIMESTEPS, seed=3):
    rng = np.random.default_rng(seed)
    return rng.random((batch, frames, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _run_all(engine, xs, policy_runs_full_horizon=True):
    outcomes = {}
    for index in range(xs.shape[0]):
        engine.admit(Request(request_id=index, inputs=xs[index]), Response(), 0.0)
    while not engine.idle:
        for sample in engine.step():
            outcomes[sample.request.request_id] = (
                sample.prediction, sample.exit_timestep, sample.score,
            )
    return outcomes


@memo_enabled
class TestKeyInterningRegression:
    def test_one_hash_per_request_regardless_of_horizon(self):
        model = _model()
        xs = _clips(6)
        # threshold 0 never exits early: every request runs all TIMESTEPS
        # steps, so per-step hashing would show up as count = N * T.
        engine = InferenceEngine(
            model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS, use_runtime=True
        )
        assert engine.stem_hash_count == 0
        _run_all(engine, xs)
        assert engine.stem_hash_count == xs.shape[0]

    def test_burst_admission_hashes_once_per_request_too(self):
        model = _model()
        xs = _clips(8, seed=11)
        engine = InferenceEngine(
            model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS, use_runtime=True
        )
        engine.admit_batch([
            (Request(request_id=index, inputs=xs[index]), Response(), 0.0)
            for index in range(xs.shape[0])
        ])
        while not engine.idle:
            engine.step()
        assert engine.stem_hash_count == xs.shape[0]

    def test_padded_tail_frames_share_one_memo_entry(self):
        model = _model(seed=5)
        # 2 recorded frames under a 5-step horizon: steps 1..4 all replay
        # frame index 1, so after the two cold misses every later step hits.
        xs = _clips(1, frames=2, seed=9)
        memo = plan_for(model).stem_cache
        memo.clear()
        engine = InferenceEngine(
            model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS, use_runtime=True
        )
        _run_all(engine, xs)
        assert memo.misses == 2
        assert memo.hits == TIMESTEPS - 2

    def test_replayed_clips_hit_across_engines(self):
        model = _model(seed=7)
        xs = _clips(4, seed=13)
        memo = plan_for(model).stem_cache
        memo.clear()
        first = InferenceEngine(
            model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS, use_runtime=True
        )
        _run_all(first, xs)
        hits_before = memo.hits
        second = InferenceEngine(
            model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS, use_runtime=True
        )
        replay = _run_all(second, xs)
        # Pure replay: every step of every slot resolves from the memo.
        assert memo.hits == hits_before + xs.shape[0] * TIMESTEPS
        assert replay == _run_all(
            InferenceEngine(model, EntropyExitPolicy(0.0),
                            max_timesteps=TIMESTEPS, use_runtime=True),
            xs,
        )

    def test_interned_keys_stay_bitwise_equal_to_oracle(self):
        model = _model(seed=17)
        for parameter in model.classifier.parameters():
            parameter.data = parameter.data * np.float32(25.0)
        xs = _clips(6, seed=19)

        def outcomes(use_runtime):
            engine = InferenceEngine(
                model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
                use_runtime=use_runtime,
            )
            return _run_all(engine, xs)

        assert outcomes(True) == outcomes(False)
