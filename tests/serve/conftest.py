"""Session-scoped serving fixtures shared across ``tests/serve/``.

The serving tests all want the same three things: a small deterministic
model whose entropy actually moves (so early exits happen at interesting
timesteps), a batch of seeded clips, and a recorded trace to replay.  Before
this conftest each module kept its own copy of that record-a-trace dance;
now one canonical trace is recorded once per session and handed to the
replay, storm and backtest suites alike.

Everything is exposed as fixtures (not importable helpers) because the test
directories carry no ``__init__.py`` — ``conftest.py`` is the only module
pytest guarantees to be on the path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.serve import Server, TraceRecorder, load_trace
from repro.snn import spiking_vgg
from repro.utils import seed_everything

SERVE_TIMESTEPS = 4
SERVE_NUM_CLASSES = 6
SERVE_IMAGE_SIZE = 10
SERVE_THRESHOLD = 0.5


@pytest.fixture(scope="session")
def serve_constants():
    """The canonical serving-test geometry, for tests that build their own
    servers around the shared model."""
    return {
        "timesteps": SERVE_TIMESTEPS,
        "num_classes": SERVE_NUM_CLASSES,
        "image_size": SERVE_IMAGE_SIZE,
        "threshold": SERVE_THRESHOLD,
    }


@pytest.fixture(scope="session")
def served_model():
    """The canonical tiny serving model (seeded, classifier boosted so the
    output distribution sharpens enough for entropy exits to spread across
    timesteps).  Session-scoped: servers only read the weights, and seeded
    construction makes it bitwise-identical to a per-test rebuild."""
    seed_everything(47)
    model = spiking_vgg(
        "tiny", num_classes=SERVE_NUM_CLASSES, input_size=SERVE_IMAGE_SIZE,
        default_timesteps=SERVE_TIMESTEPS,
    ).eval()
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(25.0)
    return model


@pytest.fixture(scope="session")
def make_clips():
    """Seeded clip batches: ``make_clips(batch, seed=3)``."""

    def _make(batch: int, seed: int = 3) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.random(
            (batch, 3, SERVE_IMAGE_SIZE, SERVE_IMAGE_SIZE)
        ).astype(np.float32)

    return _make


@pytest.fixture(scope="session")
def record_trace():
    """The record-a-trace dance as a callable:
    ``record_trace(model, xs, path, labels=None, meta=None)`` runs one live
    1-worker serve over ``xs`` with a :class:`TraceRecorder` attached and
    returns the loaded :class:`Trace`."""

    def _record(model, xs, path, labels=None, meta=None):
        base_meta = {"threshold": SERVE_THRESHOLD,
                     "max_timesteps": SERVE_TIMESTEPS}
        base_meta.update(meta or {})
        recorder = TraceRecorder(str(path), meta=base_meta)
        server = Server(
            model, EntropyExitPolicy(SERVE_THRESHOLD),
            max_timesteps=SERVE_TIMESTEPS, batch_width=3, queue_capacity=64,
            use_runtime=True, trace=recorder,
        ).start()
        try:
            futures = [
                server.submit(x, label=None if labels is None else labels[i])
                for i, x in enumerate(xs)
            ]
            for future in futures:
                future.result(timeout=60.0)
        finally:
            server.shutdown(drain=True)
            recorder.close()
        return load_trace(str(path))

    return _record


@pytest.fixture(scope="session")
def canonical_trace(served_model, make_clips, record_trace, tmp_path_factory):
    """One canonical recorded trace per session: 12 labelled clips served by
    the canonical model at the canonical threshold.  Returns
    ``(model, trace)``.  Consumers replay it (cross-composition gate), feed
    it through a storm-guarded server, and backtest candidate schedules over
    it — all against the same recording."""
    xs = make_clips(12, seed=11)
    labels = [i % SERVE_NUM_CLASSES for i in range(len(xs))]
    path = tmp_path_factory.mktemp("canonical-trace") / "canonical.jsonl"
    trace = record_trace(served_model, xs, path, labels=labels)
    assert len(trace.records) == len(xs)
    return served_model, trace
