"""Batched admission: bitwise equivalence and flat per-request cost.

``ContinuousBatcher._fill_slots`` drains a whole round of queued requests and
admits them through :meth:`InferenceEngine.admit_batch` in one go: one state
extension, one batched stem GEMM (direct encoding).  The contract is twofold:

1. *Bitwise equivalence* — admitting a burst of B requests at once produces
   exactly the per-sample trajectories of admitting them one at a time (and
   of the define-by-run Tensor oracle), for any burst size, splice point and
   deterministic encoder.  This is per-sample batch invariance at the
   admission boundary.
2. *Flat cost* — the number of state-surgery operations (executor row
   extensions, admission-time encoder invocations) per fill round is O(1) in
   the burst size, closing the seed's O(n^2) growth pattern (one
   ``np.concatenate`` of every membrane and of the running sum per request).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.policies import EntropyExitPolicy
from repro.runtime import PlanExecutor
from repro.serve import (
    AdmissionQueue,
    AdmissionRejectedError,
    ContinuousBatcher,
    InferenceEngine,
    Request,
    Response,
)
from repro.snn import SpikingNetwork, spiking_vgg
from repro.snn.encoding import DirectEncoder, EventFrameEncoder
from repro.utils import seed_everything

TIMESTEPS = 4
NUM_CLASSES = 6
IMAGE_SIZE = 10


def _build(encoder_name: str, seed: int = 47) -> SpikingNetwork:
    seed_everything(seed)
    encoder = EventFrameEncoder() if encoder_name == "event" else None
    model = spiking_vgg(
        "tiny", num_classes=NUM_CLASSES, input_size=IMAGE_SIZE,
        default_timesteps=TIMESTEPS,
        **({"encoder": encoder} if encoder else {}),
    )
    model.eval()
    # Sharpen the head so exit timesteps spread out (mixed-exit coverage).
    for parameter in model.classifier.parameters():
        parameter.data = parameter.data * np.float32(25.0)
    return model


def _inputs(encoder_name: str, batch: int, seed: int = 31) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if encoder_name == "event":
        return rng.random(
            (batch, TIMESTEPS + 1, 3, IMAGE_SIZE, IMAGE_SIZE)
        ).astype(np.float32)
    return rng.random((batch, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)


def _drain(engine: InferenceEngine, outcomes: dict) -> None:
    for sample in engine.step():
        outcomes[sample.request.request_id] = (
            sample.prediction, sample.exit_timestep, sample.score,
        )


def _drive(engine: InferenceEngine, inputs: np.ndarray, chunks, batched: bool):
    """Admit ``chunks[i]`` requests before step i (burst or one-by-one)."""
    stream = [Request(request_id=i, inputs=inputs[i]) for i in range(inputs.shape[0])]
    outcomes: dict = {}
    cursor = 0
    for chunk in chunks:
        take = stream[cursor:cursor + chunk]
        cursor += len(take)
        if batched:
            engine.admit_batch([(request, Response(), 0.0) for request in take])
        else:
            for request in take:
                engine.admit(request, Response(), start_time=0.0)
        _drain(engine, outcomes)
    while not engine.idle or cursor < len(stream):
        if cursor < len(stream):
            engine.admit(stream[cursor], Response(), start_time=0.0)
            cursor += 1
        _drain(engine, outcomes)
    assert len(outcomes) == len(stream)
    return outcomes


class TestBatchedAdmissionEquivalence:
    @pytest.mark.parametrize("encoder_name", ["direct", "event"])
    @pytest.mark.parametrize("burst", [1, 2, 8])
    def test_burst_bitwise_matches_sequential_and_oracle(self, encoder_name, burst):
        """A burst admission round is bitwise-invisible to every sample."""
        inputs = _inputs(encoder_name, batch=12)
        # Mid-horizon splices: a leading group, then bursts landing while
        # earlier slots are partway through their horizons.
        chunks = [max(1, burst // 2), burst, burst]

        reference = None
        for use_runtime, batched in ((True, True), (True, False), (False, True)):
            engine = InferenceEngine(
                _build(encoder_name), EntropyExitPolicy(0.5),
                max_timesteps=TIMESTEPS, use_runtime=use_runtime,
            )
            outcome = _drive(engine, inputs, chunks, batched=batched)
            if reference is None:
                reference = outcome
            else:
                assert outcome == reference

    def test_empty_batch_is_a_no_op(self):
        engine = InferenceEngine(
            _build("direct"), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS
        )
        engine.admit_batch([])
        assert engine.idle
        assert engine.step() == []

    def test_batcher_fill_round_matches_per_request_engine(self):
        """The batcher's drained fill round equals per-request admission."""
        inputs = _inputs("direct", batch=10)
        queue = AdmissionQueue(capacity=16)
        responses = []
        for index in range(inputs.shape[0]):
            response = Response()
            queue.put(Request(request_id=index, inputs=inputs[index]), response)
            responses.append(response)
        queue.close()
        engine = InferenceEngine(
            _build("direct"), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS
        )
        batcher = ContinuousBatcher(engine, queue, batch_width=4)
        batcher.run_until_drained()
        served = {
            index: (response.result(1.0).prediction, response.result(1.0).exit_timestep)
            for index, response in enumerate(responses)
        }

        solo = InferenceEngine(
            _build("direct"), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS
        )
        expected = {}
        for index in range(inputs.shape[0]):
            solo.admit(Request(request_id=index, inputs=inputs[index]), Response(), 0.0)
            while not solo.idle:
                _drain(solo, expected)
        assert served == {
            index: value[:2] for index, value in expected.items()
        }


class TestBatcherSurvivesBadRequest:
    def test_malformed_request_costs_its_round_not_the_batcher(self):
        """A shape-mismatched request fails its own admission round; the
        batcher, its in-flight neighbours and later traffic keep serving."""
        inputs = _inputs("direct", batch=6)
        queue = AdmissionQueue(capacity=16)
        engine = InferenceEngine(
            _build("direct"), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS
        )
        batcher = ContinuousBatcher(engine, queue, batch_width=8)

        live = [Response() for _ in range(3)]
        for index, response in enumerate(live):
            queue.put(Request(request_id=index, inputs=inputs[index]), response)
        batcher.run_once()  # the live batch is mid-horizon now
        survivors_before = engine.active_count

        bad = Response()
        co_drained = Response()
        queue.put(Request(request_id=90, inputs=np.zeros((3, 3), np.float32)), bad)
        queue.put(Request(request_id=91, inputs=inputs[3]), co_drained)
        batcher.run_once()

        assert batcher.rejected_rounds == 1
        # The whole drained round fails together (documented semantics)…
        for response in (bad, co_drained):
            with pytest.raises(AdmissionRejectedError):
                response.result(timeout=1.0)
        # …while the live batch was untouched and keeps serving, as does
        # fresh well-formed traffic afterwards.
        assert engine.active_count == survivors_before
        late = Response()
        queue.put(Request(request_id=92, inputs=inputs[4]), late)
        queue.close()
        batcher.run_until_drained()
        for response in live:
            assert response.result(timeout=1.0).exit_timestep >= 1
        assert late.result(timeout=1.0).exit_timestep >= 1


class _CountingDirectEncoder(DirectEncoder):
    """DirectEncoder that counts invocations (admission-time stem encodes)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, x, timestep):
        self.calls += 1
        return super().__call__(x, timestep)


class TestAdmissionCostRegression:
    @pytest.mark.parametrize("burst", [1, 2, 8, 32])
    def test_state_surgery_per_fill_round_is_constant(self, burst, monkeypatch):
        """Admission cost per request is flat: a burst of B requests costs ONE
        executor row extension and ONE encoder invocation, not B of each."""
        extension_rounds = []
        original = PlanExecutor.extend_rows

        def counting_extend(self, count, frames=None):
            extension_rounds.append(count)
            return original(self, count, frames=frames)

        monkeypatch.setattr(PlanExecutor, "extend_rows", counting_extend)

        model = _build("direct")
        encoder = _CountingDirectEncoder()
        model.encoder = encoder
        engine = InferenceEngine(model, EntropyExitPolicy(0.0), max_timesteps=TIMESTEPS,
                                 use_runtime=True)
        assert engine.fast_path

        queue = AdmissionQueue(capacity=max(burst, 1))
        inputs = _inputs("direct", batch=burst, seed=5)
        for index in range(burst):
            queue.put(Request(request_id=index, inputs=inputs[index]), Response())
        batcher = ContinuousBatcher(engine, queue, batch_width=burst)

        # Prime: one full session so running sums / membranes / stem rows
        # exist — the worst case for per-admission concatenation growth.
        batcher.run_once()
        while not engine.idle:
            engine.step()
        encoder_calls_before = encoder.calls
        extension_rounds.clear()

        # A fresh burst mid-session: one fill round admits all of it.
        for index in range(burst):
            queue.put(
                Request(request_id=burst + index, inputs=inputs[index]), Response()
            )
        batcher.run_once()

        assert extension_rounds == [burst]
        # run_once = one admission-time stem encode for the whole burst plus
        # one step-time batch encode; per-request admission encodes are gone.
        assert encoder.calls - encoder_calls_before == 2


class TestAlignedStemPrecondition:
    def test_time_varying_encoder_rejected_by_aligned_cache(self):
        """The aligned stem cache must refuse non-direct encoders instead of
        silently caching a t=0 frame (the old latent bug)."""
        model = _build("direct")
        engine = InferenceEngine(model, EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
                                 use_runtime=True)
        assert engine.fast_path and engine._executor.stem_enabled
        # Simulate the misuse: the encoder changes under an engine whose
        # executor was built for direct encoding.
        model.encoder = EventFrameEncoder()
        clip = _inputs("event", batch=1)[0]
        with pytest.raises(RuntimeError, match="direct encoding"):
            engine.admit(Request(request_id=0, inputs=clip), Response(), 0.0)
        # The guard fires before any state mutation: no orphan slots, and the
        # engine keeps serving once the precondition holds again.
        assert engine.idle and engine.active_count == 0
        model.encoder = DirectEncoder()
        engine.admit(
            Request(request_id=1, inputs=_inputs("direct", batch=1)[0]),
            Response(), 0.0,
        )
        while not engine.idle:
            engine.step()

    def test_failed_admission_round_resolves_every_future(self):
        """A raise during admission validation must fail the whole drained
        round's futures — those requests already left the queue, so leaving
        them pending would strand their clients until timeout."""
        engine = InferenceEngine(
            _build("direct"), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            use_runtime=True,
        )
        good = Response()
        bad = Response()
        admissions = [
            (Request(request_id=0, inputs=_inputs("direct", batch=1)[0]), good, 0.0),
            # Malformed shape: np.stack over the round raises.
            (Request(request_id=1, inputs=np.zeros((3, 3), dtype=np.float32)), bad, 0.0),
        ]
        with pytest.raises(AdmissionRejectedError):
            engine.admit_batch(admissions)
        assert engine.idle and engine.active_count == 0  # no orphan state
        for response in (good, bad):
            assert response.done()
            with pytest.raises(AdmissionRejectedError):
                response.result(timeout=0.1)

    @pytest.mark.parametrize("encoder_name,use_runtime", [
        ("event", True),   # keyed-memo fast path: no admission-time stack
        ("direct", False), # Tensor oracle: no admission-time stack either
    ])
    def test_shape_mismatch_rejected_at_admission_on_every_path(
        self, encoder_name, use_runtime
    ):
        """A malformed request must fail at ITS OWN admission round on every
        execution path — not crash a later step() and take the live batch
        (admitted neighbours included) down with it."""
        engine = InferenceEngine(
            _build(encoder_name), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            use_runtime=use_runtime,
        )
        good = _inputs(encoder_name, batch=2)
        engine.admit(Request(request_id=0, inputs=good[0]), Response(), 0.0)
        engine.step()  # neighbour is mid-horizon

        bad_response = Response()
        with pytest.raises(AdmissionRejectedError, match="does not match the served"):
            engine.admit(
                Request(request_id=1, inputs=np.zeros((3, 3), dtype=np.float32)),
                bad_response, 0.0,
            )
        assert bad_response.done()  # its client hears about it
        # The neighbour is untouched and finishes normally.
        assert engine.active_count == 1
        outcomes: dict = {}
        while not engine.idle:
            _drain(engine, outcomes)
        assert 0 in outcomes and 1 not in outcomes

    @pytest.mark.parametrize("use_runtime", [True, False])
    def test_shape_mismatch_rejected_on_an_idle_engine(self, use_runtime):
        """An IDLE engine must reject a wrong-shaped round too, not adopt
        its shape: the executor still holds residual stem/scratch arrays of
        the real shape, so an escaped mismatch would blow up inside
        extend_rows/step — outside the typed-rejection guard — and take the
        worker (or replica process) down."""
        engine = InferenceEngine(
            _build("direct"), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            use_runtime=use_runtime,
        )
        good = _inputs("direct", batch=2)
        engine.admit(Request(request_id=0, inputs=good[0]), Response(), 0.0)
        outcomes: dict = {}
        while not engine.idle:
            _drain(engine, outcomes)
        assert 0 in outcomes  # engine is now idle, shape pinned

        bad_response = Response()
        with pytest.raises(AdmissionRejectedError, match="does not match the served"):
            engine.admit(
                Request(request_id=1, inputs=np.zeros((3, 5, 5), dtype=np.float32)),
                bad_response, 0.0,
            )
        assert bad_response.done()
        # The engine survives and keeps serving correctly shaped traffic.
        engine.admit(Request(request_id=2, inputs=good[1]), Response(), 0.0)
        while not engine.idle:
            _drain(engine, outcomes)
        assert 2 in outcomes
        # fail_active wipes the residual arrays the pin protects, so the
        # pin resets with them: a recovered engine is not chained to a
        # shape adopted before any request ever met the model.
        engine.fail_active(RuntimeError("worker abort"))
        assert engine._sample_shape is None

    @pytest.mark.skipif(
        os.environ.get("REPRO_STEM_CACHE_CAPACITY", "").strip() == "0",
        reason="stem memo disabled via REPRO_STEM_CACHE_CAPACITY=0",
    )
    def test_event_engine_uses_keyed_memo_not_aligned_cache(self):
        engine = InferenceEngine(
            _build("event"), EntropyExitPolicy(0.5), max_timesteps=TIMESTEPS,
            use_runtime=True,
        )
        assert engine.fast_path
        assert not engine._executor.stem_enabled
        assert engine._executor.memo_enabled
