"""Tests for the digital processor throughput model and wall-clock profiler."""

import numpy as np
import pytest

from repro.core import DynamicInferenceResult
from repro.processors import DigitalProcessorModel, WallClockProfiler, fit_processor_model


def make_result(exit_timesteps):
    exit_timesteps = np.asarray(exit_timesteps)
    n = exit_timesteps.shape[0]
    return DynamicInferenceResult(
        exit_timesteps=exit_timesteps,
        predictions=np.zeros(n, dtype=np.int64),
        labels=np.zeros(n, dtype=np.int64),
        scores=np.zeros(n),
        max_timesteps=int(exit_timesteps.max()),
    )


class TestDigitalProcessorModel:
    def test_latency_affine_in_timesteps(self):
        model = DigitalProcessorModel(fixed_ms=2.0, per_timestep_ms=3.0)
        assert model.latency(1) == pytest.approx(5.0)
        assert model.latency(4) == pytest.approx(14.0)

    def test_throughput_decreases_with_timesteps(self):
        model = DigitalProcessorModel()
        table = model.static_throughput_table(4)
        values = [table[t] for t in range(1, 5)]
        assert all(values[i] > values[i + 1] for i in range(3))

    def test_default_constants_reproduce_paper_vgg_row(self):
        # Table III static VGG-16: 199.3, 121.8, 85.2, 64.3 img/s for T=1..4.
        model = DigitalProcessorModel()
        paper = {1: 199.3, 2: 121.8, 3: 85.19, 4: 64.34}
        for t, value in paper.items():
            assert model.throughput(t) == pytest.approx(value, rel=0.05)

    def test_dynamic_inference_recovers_throughput(self):
        model = DigitalProcessorModel()
        mostly_one = make_result([1] * 90 + [4] * 10)
        dynamic = model.dynamic_throughput(mostly_one)
        assert model.throughput(4) < dynamic < model.throughput(1)

    def test_exit_check_overhead_costs_a_little(self):
        model = DigitalProcessorModel(exit_check_ms=0.5)
        static_at_one = model.throughput(1, dynamic=False)
        dynamic_at_one = model.dynamic_throughput(make_result([1, 1, 1]))
        assert dynamic_at_one < static_at_one

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            DigitalProcessorModel().latency(0)

    def test_invalid_constants(self):
        with pytest.raises(ValueError):
            DigitalProcessorModel(per_timestep_ms=0.0)


class TestFitProcessorModel:
    def test_recovers_known_parameters(self):
        truth = DigitalProcessorModel(fixed_ms=2.0, per_timestep_ms=4.0)
        timesteps = [1, 2, 3, 4]
        throughputs = [truth.throughput(t) for t in timesteps]
        fitted = fit_processor_model(timesteps, throughputs)
        assert fitted.fixed_ms == pytest.approx(2.0, abs=1e-6)
        assert fitted.per_timestep_ms == pytest.approx(4.0, abs=1e-6)

    def test_fit_to_paper_numbers_predicts_intermediate(self):
        fitted = fit_processor_model([1, 2, 3, 4], [199.3, 121.8, 85.19, 64.34])
        assert fitted.throughput(2) == pytest.approx(121.8, rel=0.05)

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ValueError):
            fit_processor_model([1, 2], [100.0])

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ValueError):
            fit_processor_model([1, 2], [100.0, 0.0])


class TestWallClockProfiler:
    @pytest.fixture(scope="class")
    def profiler_inputs(self, trained_model, tiny_dataset):
        _, test = tiny_dataset
        return WallClockProfiler(trained_model, max_timesteps=4), test.inputs[:8]

    def test_static_measurement_fields(self, profiler_inputs):
        profiler, inputs = profiler_inputs
        measurement = profiler.measure_static(inputs, timesteps=2)
        assert measurement.num_images == 8
        assert measurement.images_per_second > 0
        assert measurement.average_timesteps == 2.0

    def test_more_timesteps_is_slower(self, profiler_inputs):
        profiler, inputs = profiler_inputs
        # Best of two windows per horizon: each window is only a few ms, so
        # a single gen-2 GC pause landing inside one (which late in a long
        # suite it deterministically does) would otherwise flip the
        # comparison.
        fast = min(
            profiler.measure_static(inputs, timesteps=1).mean_latency_ms
            for _ in range(2)
        )
        slow = min(
            profiler.measure_static(inputs, timesteps=4).mean_latency_ms
            for _ in range(2)
        )
        assert slow > fast

    def test_dynamic_average_timesteps_below_max(self, profiler_inputs):
        profiler, inputs = profiler_inputs
        measurement = profiler.measure_dynamic(inputs, threshold=0.5)
        assert 1.0 <= measurement.average_timesteps < 4.0

    def test_throughput_table_keys(self, profiler_inputs):
        profiler, inputs = profiler_inputs
        table = profiler.throughput_table(inputs[:4], thresholds={"mid": 0.3})
        assert {"static_T1", "static_T4", "dynamic_mid"} <= set(table)
