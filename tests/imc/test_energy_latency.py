"""Tests for the energy/latency models, calibration, area and sigma-E module."""

import numpy as np
import pytest

from repro.imc import (
    AreaModel,
    ChipMapping,
    ENERGY_BREAKDOWN_TARGETS,
    EnergyCalibrator,
    EnergyModel,
    HardwareConfig,
    IMCChip,
    LatencyModel,
    SigmaEModuleModel,
)
from repro.snn import spiking_vgg
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def mapping():
    seed_everything(55)
    model = spiking_vgg("vgg5", num_classes=10, input_size=16, width_multiplier=0.25,
                        default_timesteps=2)
    sample = np.random.default_rng(1).random((4, 3, 16, 16)).astype(np.float32)
    return ChipMapping.from_network(model, sample, timesteps=2)


@pytest.fixture(scope="module")
def chip(mapping):
    config = EnergyCalibrator().calibrate(mapping)
    return IMCChip(mapping=mapping, config=config, num_classes=10)


class TestEnergyModel:
    def test_breakdown_components_positive(self, mapping):
        breakdown = EnergyModel(mapping).per_timestep_breakdown()
        assert breakdown.crossbar_adc > 0
        assert breakdown.digital_peripherals > 0
        assert breakdown.htree > 0
        assert breakdown.noc > 0
        assert breakdown.lif > 0

    def test_shares_sum_to_one(self, mapping):
        shares = EnergyModel(mapping).per_timestep_breakdown().shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_energy_affine_in_timesteps(self, mapping):
        model = EnergyModel(mapping)
        e1, e2, e3 = model.energy(1), model.energy(2), model.energy(3)
        assert e2 - e1 == pytest.approx(e3 - e2, rel=1e-9)
        assert e2 - e1 == pytest.approx(model.per_timestep_energy(), rel=1e-9)

    def test_static_energy_independent_of_timesteps(self, mapping):
        model = EnergyModel(mapping)
        assert model.energy(5) - 5 * model.per_timestep_energy() == pytest.approx(
            model.static_energy(), rel=1e-9
        )

    def test_invalid_timesteps(self, mapping):
        with pytest.raises(ValueError):
            EnergyModel(mapping).energy(0)


class TestCalibration:
    def test_component_shares_match_figure_1a(self, mapping):
        config = EnergyCalibrator().calibrate(mapping)
        shares = EnergyModel(mapping, config).per_timestep_breakdown().shares()
        normalizer = sum(ENERGY_BREAKDOWN_TARGETS.values())
        for component, target in ENERGY_BREAKDOWN_TARGETS.items():
            assert shares[component] == pytest.approx(target / normalizer, abs=1e-6)

    def test_static_fraction_matches_figure_1b(self, mapping):
        config = EnergyCalibrator(static_fraction=0.4).calibrate(mapping)
        model = EnergyModel(mapping, config)
        assert model.static_fraction() == pytest.approx(0.4, abs=1e-6)

    def test_energy_curve_matches_paper_series(self, mapping):
        # Fig. 1(B): normalized energy 1.0, 1.4, 2.0, ..., 4.9 for T = 1..8
        config = EnergyCalibrator(static_fraction=0.4).calibrate(mapping)
        curve = EnergyModel(mapping, config).normalized_energy_curve(8)
        paper = {1: 1.0, 2: 1.6, 3: 2.2, 4: 2.8, 5: 3.4, 6: 4.0, 7: 4.6, 8: 5.2}
        # The paper rounds to one decimal (1.0, 1.4, 2.0, 2.6, ...); our affine
        # model with static fraction 0.4 gives E(T)/E(1) = 0.4 + 0.6T which is
        # within 0.3 of every reported point.
        for t, value in paper.items():
            assert curve[t] == pytest.approx(0.4 + 0.6 * t, rel=1e-6)
            assert abs(curve[t] - value) < 0.35

    def test_custom_targets(self, mapping):
        targets = {"crossbar_adc": 0.5, "digital_peripherals": 0.3, "htree": 0.1, "noc": 0.05, "lif": 0.05}
        config = EnergyCalibrator(targets=targets).calibrate(mapping)
        shares = EnergyModel(mapping, config).per_timestep_breakdown().shares()
        assert shares["crossbar_adc"] == pytest.approx(0.5, abs=1e-6)

    def test_invalid_static_fraction(self):
        with pytest.raises(ValueError):
            EnergyCalibrator(static_fraction=1.0)

    def test_unknown_component_rejected(self, mapping):
        with pytest.raises(KeyError):
            EnergyCalibrator(targets={"gpu": 1.0}).calibrate(mapping)


class TestLatencyModel:
    def test_latency_linear_in_timesteps(self, mapping):
        model = LatencyModel(mapping)
        curve = model.normalized_latency_curve(8)
        # Fig. 1(B): latency is T x the single-timestep latency.
        for t in range(1, 9):
            assert curve[t] == pytest.approx(float(t), rel=1e-6)

    def test_per_timestep_latency_positive(self, mapping):
        assert LatencyModel(mapping).per_timestep_latency() > 0

    def test_pipelined_mode_faster_per_timestep_for_static(self, mapping):
        sequential = LatencyModel(mapping, pipelined=False)
        pipelined = LatencyModel(mapping, pipelined=True)
        assert pipelined.per_timestep_latency() <= sequential.per_timestep_latency()

    def test_pipelined_mode_pays_fill_drain_penalty(self, mapping):
        # For a single timestep (the DT-SNN common case) the non-pipelined
        # design is at least as fast, which is the paper's design rationale.
        sequential = LatencyModel(mapping, pipelined=False)
        pipelined = LatencyModel(mapping, pipelined=True)
        assert pipelined.latency(1) >= sequential.latency(1) * 0.99

    def test_invalid_timesteps(self, mapping):
        with pytest.raises(ValueError):
            LatencyModel(mapping).latency(0)


class TestSigmaEModule:
    def test_energy_scales_with_classes(self):
        config = HardwareConfig.paper_default()
        small = SigmaEModuleModel(config, num_classes=10).energy_per_check()
        large = SigmaEModuleModel(config, num_classes=100).energy_per_check()
        assert large > small

    def test_overhead_negligible(self, chip):
        # Paper: sigma-E energy is ~2e-5 of one timestep of inference.
        assert chip.sigma_e_overhead() < 1e-3

    def test_storage_fits_table_one_luts(self):
        module = SigmaEModuleModel(HardwareConfig.paper_default(), num_classes=10)
        assert module.fits_lut_budget()

    def test_quantized_entropy_close_to_float(self):
        module = SigmaEModuleModel(HardwareConfig.paper_default(), num_classes=10)
        rng = np.random.default_rng(0)
        logits = rng.normal(0, 3, size=(50, 10))
        from repro.core import normalized_entropy, softmax_probabilities

        exact = normalized_entropy(softmax_probabilities(logits))
        quantized = module.quantized_entropy(logits)
        assert np.abs(exact - quantized).max() < 0.05

    def test_hardware_decision_matches_software_mostly(self):
        module = SigmaEModuleModel(HardwareConfig.paper_default(), num_classes=10)
        rng = np.random.default_rng(1)
        logits = rng.normal(0, 3, size=(200, 10))
        from repro.core import EntropyExitPolicy

        software = EntropyExitPolicy(threshold=0.2).should_exit(logits)
        hardware = module.should_exit(logits, threshold=0.2)
        agreement = np.mean(software == hardware)
        assert agreement > 0.97

    def test_invalid_threshold(self):
        module = SigmaEModuleModel(HardwareConfig.paper_default())
        with pytest.raises(ValueError):
            module.should_exit(np.zeros((1, 10)), threshold=2.0)

    def test_relative_overhead_validates_input(self):
        module = SigmaEModuleModel(HardwareConfig.paper_default())
        with pytest.raises(ValueError):
            module.relative_overhead(0.0)


class TestIMCChip:
    def test_cost_model_protocol(self, chip):
        assert chip.energy(2) > chip.energy(1)
        assert chip.latency(2) > chip.latency(1)
        assert chip.edp(4) == pytest.approx(chip.energy(4) * chip.latency(4))

    def test_energy_curve_shape(self, chip):
        curve = chip.normalized_energy_curve(8)
        assert curve[1] == pytest.approx(1.0)
        assert curve[8] == pytest.approx(0.4 + 0.6 * 8, rel=0.02)

    def test_latency_curve_shape(self, chip):
        curve = chip.normalized_latency_curve(8)
        assert curve[8] == pytest.approx(8.0, rel=0.02)

    def test_summary_keys(self, chip):
        summary = chip.summary()
        assert {"total_crossbars", "per_timestep_energy_pj", "sigma_e_overhead"} <= set(summary)

    def test_from_network_constructor(self):
        seed_everything(60)
        model = spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)
        sample = np.random.default_rng(2).random((2, 3, 8, 8)).astype(np.float32)
        chip = IMCChip.from_network(model, sample, num_classes=10)
        shares = chip.energy_breakdown_shares()
        assert shares["digital_peripherals"] == pytest.approx(0.45 / 0.97, abs=1e-3)

    def test_exit_checks_add_energy(self, mapping):
        config = EnergyCalibrator().calibrate(mapping)
        with_checks = IMCChip(mapping=mapping, config=config, include_exit_checks=True)
        without_checks = IMCChip(mapping=mapping, config=config, include_exit_checks=False)
        assert with_checks.energy(4) > without_checks.energy(4)
        # ... but only barely (the Sec. III-B claim).
        assert with_checks.energy(4) / without_checks.energy(4) < 1.001


class TestAreaModel:
    def test_breakdown_positive_and_consistent(self, mapping):
        breakdown = AreaModel(mapping).breakdown()
        parts = [v for k, v in breakdown.items() if k != "total"]
        assert all(v > 0 for v in parts)
        assert breakdown["total"] == pytest.approx(sum(parts))

    def test_sigma_e_area_is_small(self, mapping):
        assert AreaModel(mapping).sigma_e_fraction() < 0.1
