"""Tests for the network -> tiles/PEs/crossbars mapping and event counts."""

import math

import numpy as np
import pytest

from repro.imc import ChipMapping, HardwareConfig, LayerGeometry, LayerMapping, trace_network_geometry
from repro.snn import spiking_vgg


@pytest.fixture(scope="module")
def traced(untrained_model_input=None):
    from repro.utils import seed_everything

    seed_everything(77)
    model = spiking_vgg("tiny", num_classes=10, input_size=16, default_timesteps=2)
    sample = np.random.default_rng(0).random((4, 3, 16, 16)).astype(np.float32)
    geometries = trace_network_geometry(model, sample, timesteps=2)
    return model, sample, geometries


class TestTracing:
    def test_all_weight_layers_found(self, traced):
        model, _, geometries = traced
        # tiny VGG: 2 conv blocks + 1 linear classifier
        kinds = [g.kind for g in geometries]
        assert kinds.count("conv") == 2
        assert kinds.count("linear") == 1

    def test_geometry_dimensions(self, traced):
        _, _, geometries = traced
        first_conv = next(g for g in geometries if g.kind == "conv")
        assert first_conv.weight_rows == 3 * 3 * 3
        assert first_conv.output_positions == 16 * 16

    def test_activity_in_unit_interval(self, traced):
        _, _, geometries = traced
        assert all(0.0 <= g.input_activity <= 1.0 for g in geometries)

    def test_first_layer_sees_dense_input(self, traced):
        # Direct encoding feeds the analog image, which is essentially dense.
        _, _, geometries = traced
        first_conv = next(g for g in geometries if g.kind == "conv")
        assert first_conv.input_activity > 0.9

    def test_spiking_layers_are_sparse(self, traced):
        _, _, geometries = traced
        later = [g for g in geometries if g.kind == "conv"][1]
        assert later.input_activity < 0.9

    def test_trace_restores_model(self, traced):
        model, sample, _ = traced
        # Forward still works and produces finite logits after tracing.
        out = model.forward(sample, 1)
        assert np.isfinite(out.final().data).all()
        # The instance-level forward wrappers were removed.
        from repro.nn.layers import Conv2d

        for module in model.modules():
            if isinstance(module, Conv2d):
                assert "forward" not in module.__dict__

    def test_macs_per_timestep(self):
        geometry = LayerGeometry(
            name="conv",
            kind="conv",
            in_channels=3,
            out_channels=8,
            kernel_size=3,
            output_positions=64,
            input_activity=1.0,
            weight_rows=27,
            weight_cols=8,
        )
        assert geometry.macs_per_timestep == 64 * 27 * 8


class TestLayerMapping:
    def test_crossbar_count_formula(self):
        config = HardwareConfig.paper_default()
        geometry = LayerGeometry(
            name="conv",
            kind="conv",
            in_channels=32,
            out_channels=64,
            kernel_size=3,
            output_positions=100,
            input_activity=0.5,
            weight_rows=288,   # 3*3*32
            weight_cols=64,
        )
        mapping = LayerMapping.from_geometry(geometry, config)
        assert mapping.row_splits == math.ceil(288 / 64)
        assert mapping.col_splits == math.ceil(64 * 2 / 64)
        assert mapping.num_crossbars == mapping.row_splits * mapping.col_splits
        assert mapping.num_tiles >= 1

    def test_event_counts_scale_with_positions(self):
        config = HardwareConfig.paper_default()

        def build(positions):
            return LayerMapping.from_geometry(
                LayerGeometry("l", "conv", 8, 8, 3, positions, 0.5, 72, 8), config
            )

        small, large = build(10), build(100)
        assert large.crossbar_reads == pytest.approx(10 * small.crossbar_reads)
        assert large.adc_conversions == pytest.approx(10 * small.adc_conversions)
        assert large.lif_updates == pytest.approx(10 * small.lif_updates)

    def test_row_activations_scale_with_activity(self):
        config = HardwareConfig.paper_default()
        dense = LayerMapping.from_geometry(
            LayerGeometry("l", "conv", 8, 8, 3, 10, 1.0, 72, 8), config
        )
        sparse = LayerMapping.from_geometry(
            LayerGeometry("l", "conv", 8, 8, 3, 10, 0.1, 72, 8), config
        )
        assert sparse.row_activations == pytest.approx(0.1 * dense.row_activations)


class TestChipMapping:
    def test_from_network_totals(self, traced):
        model, sample, _ = traced
        mapping = ChipMapping.from_network(model, sample, timesteps=1)
        assert mapping.total_crossbars >= len(mapping.layers)
        assert mapping.total_tiles >= 1
        assert mapping.input_pixels == 3 * 16 * 16

    def test_event_totals_keys(self, traced):
        model, sample, _ = traced
        mapping = ChipMapping.from_network(model, sample, timesteps=1)
        totals = mapping.event_totals()
        assert set(totals) == {
            "crossbar_reads",
            "row_activations",
            "adc_conversions",
            "accumulator_ops",
            "shift_add_ops",
            "buffer_accesses",
            "htree_transfers",
            "noc_transfers",
            "lif_updates",
        }
        assert all(value >= 0 for value in totals.values())

    def test_three_d_sample_promoted(self, traced):
        model, sample, _ = traced
        mapping = ChipMapping.from_network(model, sample[0], timesteps=1)
        assert mapping.input_pixels == 3 * 16 * 16

    def test_utilization_summary(self, traced):
        model, sample, _ = traced
        summary = ChipMapping.from_network(model, sample, timesteps=1).utilization_summary()
        assert summary["num_layers"] == 3
        assert summary["total_macs_per_timestep"] > 0

    def test_empty_network_rejected(self):
        from repro.nn import Sequential, Identity, Flatten
        from repro.snn import SpikingNetwork

        model = SpikingNetwork(Sequential(Identity()), Sequential(Flatten()), default_timesteps=1)
        with pytest.raises(ValueError):
            ChipMapping.from_network(model, np.zeros((1, 3, 4, 4), dtype=np.float32))

    def test_vgg16_full_width_is_large(self):
        # The real VGG-16 (full width) should occupy hundreds of crossbars,
        # sanity-checking the mapping arithmetic at paper scale.
        geometry = LayerGeometry("conv5_3", "conv", 512, 512, 3, 4, 0.2, 4608, 512)
        mapping = LayerMapping.from_geometry(geometry, HardwareConfig.paper_default())
        assert mapping.num_crossbars == math.ceil(4608 / 64) * math.ceil(1024 / 64)
        assert mapping.num_tiles >= 18
