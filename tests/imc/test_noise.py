"""Tests for device-variation injection into trained networks (Fig. 6B)."""

import numpy as np
import pytest

from repro.imc import apply_device_variation, perturbed_state_dict, with_device_variation
from repro.snn import spiking_vgg
from repro.utils import seed_everything


@pytest.fixture
def model():
    seed_everything(41)
    return spiking_vgg("tiny", num_classes=10, input_size=8, default_timesteps=2)


class TestPerturbedStateDict:
    def test_conv_and_linear_weights_change(self, model):
        perturbed = perturbed_state_dict(model, sigma=0.2, rng=np.random.default_rng(0))
        original = model.state_dict()
        changed = [
            key
            for key in original
            if key.endswith("conv.weight") or ("classifier" in key and key.endswith("weight"))
        ]
        assert changed
        for key in changed:
            assert not np.allclose(perturbed[key], original[key])

    def test_norm_parameters_untouched(self, model):
        perturbed = perturbed_state_dict(model, sigma=0.2, rng=np.random.default_rng(0))
        original = model.state_dict()
        for key in original:
            if "norm" in key:
                assert np.allclose(perturbed[key], original[key])

    def test_biases_untouched(self, model):
        perturbed = perturbed_state_dict(model, sigma=0.2, rng=np.random.default_rng(0))
        original = model.state_dict()
        for key in original:
            if key.endswith("bias"):
                assert np.allclose(perturbed[key], original[key])

    def test_zero_sigma_without_quantization_is_identity(self, model):
        perturbed = perturbed_state_dict(
            model, sigma=0.0, rng=np.random.default_rng(0), quantize=False
        )
        original = model.state_dict()
        for key in original:
            assert np.allclose(perturbed[key], original[key], atol=1e-6)

    def test_larger_sigma_larger_deviation(self, model):
        original = model.state_dict()
        small = perturbed_state_dict(model, sigma=0.05, rng=np.random.default_rng(1))
        large = perturbed_state_dict(model, sigma=0.5, rng=np.random.default_rng(1))
        key = next(k for k in original if k.endswith("conv.weight"))
        dev_small = np.abs(small[key] - original[key]).mean()
        dev_large = np.abs(large[key] - original[key]).mean()
        assert dev_large > dev_small


class TestApplyAndRestore:
    def test_apply_returns_original(self, model):
        before = model.state_dict()
        original = apply_device_variation(model, sigma=0.2, rng=np.random.default_rng(2))
        key = next(k for k in before if k.endswith("conv.weight"))
        assert np.allclose(original[key], before[key])
        assert not np.allclose(model.state_dict()[key], before[key])

    def test_context_manager_restores(self, model):
        before = model.state_dict()
        key = next(k for k in before if k.endswith("conv.weight"))
        with with_device_variation(model, sigma=0.3, seed=3):
            assert not np.allclose(model.state_dict()[key], before[key])
        assert np.allclose(model.state_dict()[key], before[key])

    def test_context_manager_restores_on_exception(self, model):
        before = model.state_dict()
        key = next(k for k in before if k.endswith("conv.weight"))
        with pytest.raises(RuntimeError):
            with with_device_variation(model, sigma=0.3, seed=4):
                raise RuntimeError("boom")
        assert np.allclose(model.state_dict()[key], before[key])

    def test_variation_degrades_but_does_not_destroy_accuracy(self, trained_model, tiny_loaders):
        from repro.training import evaluate_accuracy

        _, test_loader = tiny_loaders
        clean = evaluate_accuracy(trained_model, test_loader, timesteps=4)
        with with_device_variation(trained_model, sigma=0.2, seed=5):
            noisy = evaluate_accuracy(trained_model, test_loader, timesteps=4)
        after = evaluate_accuracy(trained_model, test_loader, timesteps=4)
        assert after == pytest.approx(clean)
        assert noisy > 0.2           # far above the 0.1 chance level
        assert noisy <= clean + 0.05  # variation does not magically help
