"""Tests for HardwareConfig (Table I) and the RRAM device model."""

import numpy as np
import pytest

from repro.imc import ENERGY_BREAKDOWN_TARGETS, EnergyConstants, HardwareConfig, RRAMDeviceModel


class TestHardwareConfig:
    def test_paper_defaults_match_table_one(self):
        config = HardwareConfig.paper_default()
        assert config.technology_nm == 32
        assert config.crossbar_size == 64
        assert config.crossbars_per_tile == 64
        assert config.device_bits == 4
        assert config.weight_bits == 8
        assert config.r_off_on_ratio == pytest.approx(10.0)
        assert config.r_on_ohm == pytest.approx(20e3)
        assert config.device_variation_sigma == pytest.approx(0.20)
        assert config.global_buffer_kb == pytest.approx(20.0)
        assert config.tile_buffer_kb == pytest.approx(10.0)
        assert config.pe_buffer_kb == pytest.approx(5.0)
        assert config.vdd == pytest.approx(0.9)
        assert config.v_read == pytest.approx(0.1)
        assert config.sigma_lut_kb == pytest.approx(3.0)
        assert config.entropy_lut_kb == pytest.approx(3.0)

    def test_derived_quantities(self):
        config = HardwareConfig.paper_default()
        assert config.cells_per_weight == 2
        assert config.conductance_levels == 16
        assert config.pes_per_tile == 4
        assert config.g_on == pytest.approx(1.0 / 20e3)
        assert config.g_off == pytest.approx(1.0 / 200e3)

    def test_validation_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            HardwareConfig(crossbars_per_tile=10, crossbars_per_pe=3).validate()
        with pytest.raises(ValueError):
            HardwareConfig(weight_bits=6, device_bits=4).validate()
        with pytest.raises(ValueError):
            HardwareConfig(r_off_on_ratio=0.5).validate()

    def test_breakdown_targets_match_figure_1a(self):
        assert ENERGY_BREAKDOWN_TARGETS["digital_peripherals"] == pytest.approx(0.45)
        assert ENERGY_BREAKDOWN_TARGETS["crossbar_adc"] == pytest.approx(0.25)
        assert ENERGY_BREAKDOWN_TARGETS["htree"] == pytest.approx(0.17)
        assert ENERGY_BREAKDOWN_TARGETS["noc"] == pytest.approx(0.09)
        assert ENERGY_BREAKDOWN_TARGETS["lif"] == pytest.approx(0.01)

    def test_energy_constants_scaled_by_component(self):
        constants = EnergyConstants()
        scaled = constants.scaled({"noc": 2.0, "lif": 0.5})
        assert scaled.noc_transfer_pj == pytest.approx(constants.noc_transfer_pj * 2.0)
        assert scaled.lif_update_pj == pytest.approx(constants.lif_update_pj * 0.5)
        assert scaled.adc_conversion_pj == pytest.approx(constants.adc_conversion_pj)

    def test_with_energy_returns_new_config(self):
        config = HardwareConfig.paper_default()
        new = config.with_energy(EnergyConstants(noc_transfer_pj=99.0))
        assert new.energy.noc_transfer_pj == 99.0
        assert config.energy.noc_transfer_pj != 99.0


class TestDeviceModel:
    @pytest.fixture
    def device(self):
        return RRAMDeviceModel(HardwareConfig.paper_default())

    def test_weight_quantization_error_bounded(self, device):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 0.2, size=(32, 32)).astype(np.float32)
        quantized = device.quantize_weights(weights)
        max_abs = np.abs(weights).max()
        step = max_abs / (2**7 - 1)
        assert np.abs(quantized - weights).max() <= step / 2 + 1e-6

    def test_quantization_preserves_zero(self, device):
        weights = np.array([0.0, 0.5, -0.5])
        assert device.quantize_weights(weights)[0] == 0.0

    def test_conductance_mapping_roundtrip(self, device):
        rng = np.random.default_rng(1)
        weights = rng.normal(0, 1.0, size=(16, 8))
        g_plus, g_minus, scale = device.weights_to_conductances(weights)
        recovered = device.conductances_to_weights(g_plus, g_minus, scale)
        assert np.allclose(recovered, weights, atol=1e-5)

    def test_conductances_within_device_range(self, device):
        weights = np.random.default_rng(2).normal(size=(8, 8))
        g_plus, g_minus, _ = device.weights_to_conductances(weights)
        config = device.config
        for g in (g_plus, g_minus):
            assert (g >= config.g_off - 1e-12).all()
            assert (g <= config.g_on + 1e-12).all()

    def test_conductance_quantization_levels(self, device):
        config = device.config
        conductances = np.linspace(config.g_off, config.g_on, 1000)
        quantized = device.quantize_conductances(conductances)
        assert len(np.unique(np.round(quantized, 12))) <= config.conductance_levels

    def test_variation_zero_sigma_is_identity(self, device):
        conductances = np.full((4, 4), device.config.g_on)
        assert np.allclose(device.apply_variation(conductances, sigma=0.0), conductances)

    def test_variation_magnitude_tracks_sigma(self, device):
        rng = np.random.default_rng(3)
        conductances = np.full(20000, device.config.g_on)
        noisy = device.apply_variation(conductances, sigma=0.2, rng=rng)
        relative = noisy / device.config.g_on
        assert relative.std() == pytest.approx(0.2, rel=0.1)

    def test_variation_never_negative(self, device):
        rng = np.random.default_rng(4)
        noisy = device.apply_variation(np.full(10000, device.config.g_off), sigma=1.0, rng=rng)
        assert (noisy > 0).all()

    def test_negative_sigma_rejected(self, device):
        with pytest.raises(ValueError):
            device.apply_variation(np.ones(3), sigma=-0.1)

    def test_perturb_weights_preserves_shape_and_scale(self, device):
        rng = np.random.default_rng(5)
        weights = rng.normal(0, 0.1, size=(64, 27)).astype(np.float32)
        perturbed = device.perturb_weights(weights, sigma=0.2, rng=rng)
        assert perturbed.shape == weights.shape
        # Perturbation is noise around the original weights, not a rescale.
        correlation = np.corrcoef(weights.reshape(-1), perturbed.reshape(-1))[0, 1]
        assert correlation > 0.8

    def test_perturb_weights_zero_sigma_close_to_quantized(self, device):
        weights = np.random.default_rng(6).normal(0, 0.1, size=(16, 16)).astype(np.float32)
        perturbed = device.perturb_weights(weights, sigma=0.0, rng=np.random.default_rng(0))
        # Only quantization error remains.
        assert np.abs(perturbed - weights).max() < 0.05 * np.abs(weights).max() + 1e-3
