"""Tests for the functional crossbar model (analog MAC + ADC + stats)."""

import numpy as np
import pytest

from repro.imc import CrossbarArray, HardwareConfig


@pytest.fixture
def weights():
    return np.random.default_rng(0).normal(0, 0.1, size=(32, 16)).astype(np.float32)


class TestConstruction:
    def test_rejects_oversized_blocks(self):
        with pytest.raises(ValueError):
            CrossbarArray(np.zeros((65, 10)))
        with pytest.raises(ValueError):
            CrossbarArray(np.zeros((10, 65)))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            CrossbarArray(np.zeros((4, 4, 4)))

    def test_effective_weights_close_to_ideal(self, weights):
        xbar = CrossbarArray(weights)
        error = np.abs(xbar.effective_weights - weights).max()
        assert error < 0.15 * np.abs(weights).max()


class TestRead:
    def test_ideal_read_matches_matmul(self, weights):
        xbar = CrossbarArray(weights, quantize=False)
        inputs = (np.random.default_rng(1).random((5, 32)) > 0.5).astype(np.float32)
        outputs = xbar.read(inputs, quantize_adc=False)
        assert np.allclose(outputs, inputs @ weights, atol=1e-4)

    def test_quantized_read_close_to_ideal(self, weights):
        xbar = CrossbarArray(weights, quantize=True)
        inputs = (np.random.default_rng(2).random((8, 32)) > 0.5).astype(np.float32)
        exact = inputs @ weights
        approx = xbar.read(inputs, quantize_adc=True)
        scale = np.abs(exact).max() + 1e-9
        assert np.abs(approx - exact).max() / scale < 0.35

    def test_wrong_input_width_rejected(self, weights):
        xbar = CrossbarArray(weights)
        with pytest.raises(ValueError):
            xbar.read(np.zeros((2, 31)))

    def test_single_vector_promoted_to_batch(self, weights):
        xbar = CrossbarArray(weights)
        out = xbar.read(np.zeros(32, dtype=np.float32))
        assert out.shape == (1, 16)

    def test_device_variation_changes_output(self, weights):
        ideal = CrossbarArray(weights, quantize=False)
        noisy = CrossbarArray(
            weights,
            quantize=False,
            apply_variation=True,
            variation_sigma=0.2,
            rng=np.random.default_rng(3),
        )
        inputs = np.ones((1, 32), dtype=np.float32)
        assert not np.allclose(ideal.read(inputs, False), noisy.read(inputs, False))


class TestStats:
    def test_stats_accumulate_over_reads(self, weights):
        xbar = CrossbarArray(weights)
        inputs = np.zeros((3, 32), dtype=np.float32)
        inputs[:, :8] = 1.0
        xbar.read(inputs)
        assert xbar.stats.read_operations == 3
        assert xbar.stats.row_activations == pytest.approx(24)
        assert xbar.stats.adc_conversions == 3 * 16

    def test_reset_stats(self, weights):
        xbar = CrossbarArray(weights)
        xbar.read(np.ones((2, 32), dtype=np.float32))
        xbar.reset_stats()
        assert xbar.stats.read_operations == 0

    def test_merge_stats(self, weights):
        xbar = CrossbarArray(weights)
        xbar.read(np.ones((1, 32), dtype=np.float32))
        first = xbar.stats
        merged = first.merge(first)
        assert merged.read_operations == 2 * first.read_operations
