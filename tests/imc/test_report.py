"""Tests for the text report helpers."""

from repro.imc import format_breakdown, format_comparison_rows, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "2.5" in text
        assert "x" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-name-here", 1.0], ["s", 2.0]])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines)) <= 2  # header sep may differ slightly

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]], float_format="{:.2f}")
        assert "0.12" in text


class TestBreakdownAndComparison:
    def test_breakdown_percentages(self):
        text = format_breakdown({"digital": 0.45, "crossbar": 0.25})
        assert "45.0" in text
        assert "25.0" in text

    def test_breakdown_sorted_descending(self):
        text = format_breakdown({"small": 0.1, "big": 0.9})
        assert text.index("big") < text.index("small")

    def test_comparison_rows_select_columns(self):
        rows = [{"model": "vgg", "acc": 0.93, "extra": 1}, {"model": "resnet", "acc": 0.94}]
        text = format_comparison_rows(rows, ["model", "acc"], title="Table II")
        assert "Table II" in text
        assert "vgg" in text and "resnet" in text
        assert "extra" not in text
