"""Hypothesis property tests for the DT-SNN core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    DynamicTimestepInference,
    EntropyExitPolicy,
    account_result,
    normalized_entropy,
    softmax_probabilities,
)


def logits_arrays(t=4, n=8, k=5):
    return arrays(
        dtype=np.float64,
        shape=(t, n, k),
        elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False, width=32),
    )


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (6, 8), elements=st.floats(-20, 20, allow_nan=False, allow_infinity=False, width=32)))
def test_normalized_entropy_in_unit_interval(logits):
    entropy = normalized_entropy(softmax_probabilities(logits))
    assert np.all(entropy >= -1e-9)
    assert np.all(entropy <= 1.0 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(logits_arrays(), st.floats(0.01, 0.99))
def test_exit_timesteps_always_within_horizon(cumulative, threshold):
    engine = DynamicTimestepInference(policy=EntropyExitPolicy(threshold), max_timesteps=4)
    result = engine.infer_from_logits(cumulative)
    assert result.exit_timesteps.min() >= 1
    assert result.exit_timesteps.max() <= 4
    np.testing.assert_allclose(result.timestep_fractions().sum(), 1.0, rtol=1e-9)


@settings(max_examples=30, deadline=None)
@given(logits_arrays(), st.floats(0.01, 0.5), st.floats(0.0, 0.49))
def test_larger_threshold_never_increases_average_timesteps(cumulative, base, delta):
    """Monotonicity: a looser entropy threshold can only exit earlier."""
    tight = DynamicTimestepInference(policy=EntropyExitPolicy(base), max_timesteps=4)
    loose = DynamicTimestepInference(policy=EntropyExitPolicy(base + delta), max_timesteps=4)
    avg_tight = tight.infer_from_logits(cumulative).average_timesteps
    avg_loose = loose.infer_from_logits(cumulative).average_timesteps
    assert avg_loose <= avg_tight + 1e-12


@settings(max_examples=30, deadline=None)
@given(logits_arrays(), st.floats(0.01, 0.99))
def test_per_sample_exit_is_first_qualifying_timestep(cumulative, threshold):
    """Eq. 8: the exit time is the argmin over qualifying timesteps."""
    policy = EntropyExitPolicy(threshold)
    engine = DynamicTimestepInference(policy=policy, max_timesteps=4)
    result = engine.infer_from_logits(cumulative)
    entropies = engine.entropy_trajectories(cumulative)  # (T, N)
    for sample in range(cumulative.shape[1]):
        qualifying = np.flatnonzero(entropies[:, sample] < threshold)
        expected = (qualifying[0] + 1) if qualifying.size else 4
        assert result.exit_timesteps[sample] == expected


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.int64, (16,), elements=st.integers(1, 4)),
    st.floats(0.0, 2.0),
    st.floats(0.1, 2.0),
)
def test_accounting_mean_energy_between_min_and_max(exits, static, dynamic):
    class Model:
        def energy(self, t):
            return static + dynamic * t

        def latency(self, t):
            return float(t)

    from repro.core import DynamicInferenceResult

    result = DynamicInferenceResult(
        exit_timesteps=exits,
        predictions=np.zeros(16, dtype=np.int64),
        labels=np.zeros(16, dtype=np.int64),
        scores=np.zeros(16),
        max_timesteps=4,
    )
    report = account_result(result, Model())
    model = Model()
    assert model.energy(int(exits.min())) - 1e-9 <= report.mean_energy <= model.energy(int(exits.max())) + 1e-9
    # Jensen: mean EDP >= product of means when both are increasing in T.
    assert report.mean_edp >= report.mean_energy * report.mean_latency - 1e-9
