"""Property tests: every supported model configuration verifies cleanly.

Two layers of coverage:

* an exhaustive sweep over (family, norm, encoder, dtype mode) — the
  combinations the paper's pipelines actually instantiate — asserting that
  ``compile_network`` (which runs :func:`verify_plan` internally) produces
  a plan that also verifies against the concrete input shape;
* a Hypothesis property randomizing the continuous knobs (input size,
  width multiplier, class count) on top of sampled discrete ones.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.planverify import verify_plan
from repro.runtime import compile_network
from repro.snn import spiking_resnet, spiking_vgg
from repro.snn.encoding import DirectEncoder, EventFrameEncoder, PoissonEncoder
from repro.utils import seed_everything

_BUILDERS = {"vgg": spiking_vgg, "resnet": spiking_resnet}
_ENCODERS = {
    "direct": DirectEncoder,
    "poisson": PoissonEncoder,
    "event": EventFrameEncoder,
}
_MODES = {"default": None, "legacy": "1"}


def _compile_and_verify(family, norm, encoder, input_size=8, **kwargs):
    seed_everything(17)
    model = _BUILDERS[family](
        "tiny",
        input_size=input_size,
        norm=norm,
        encoder=_ENCODERS[encoder](),
        **kwargs,
    )
    plan = compile_network(model.eval())
    assert verify_plan(plan, input_shape=(3, input_size, input_size)) is plan
    return plan


class _dtype_mode:
    """Temporarily pin REPRO_FLOAT64 for one compile+verify round."""

    def __init__(self, value):
        self.value = value

    def __enter__(self):
        self.previous = os.environ.get("REPRO_FLOAT64")
        if self.value is None:
            os.environ.pop("REPRO_FLOAT64", None)
        else:
            os.environ["REPRO_FLOAT64"] = self.value

    def __exit__(self, *exc_info):
        if self.previous is None:
            os.environ.pop("REPRO_FLOAT64", None)
        else:
            os.environ["REPRO_FLOAT64"] = self.previous


@pytest.mark.parametrize("mode", sorted(_MODES))
@pytest.mark.parametrize("encoder", sorted(_ENCODERS))
@pytest.mark.parametrize("norm", ["bn", "tdbn", "none"])
@pytest.mark.parametrize("family", sorted(_BUILDERS))
def test_every_supported_combo_verifies_clean(family, norm, encoder, mode):
    with _dtype_mode(_MODES[mode]):
        plan = _compile_and_verify(family, norm, encoder)
    assert plan.float64_mode is (mode == "legacy")


@settings(max_examples=25, deadline=None)
@given(
    family=st.sampled_from(sorted(_BUILDERS)),
    norm=st.sampled_from(["bn", "tdbn", "none"]),
    encoder=st.sampled_from(sorted(_ENCODERS)),
    input_size=st.sampled_from([8, 9, 10, 12, 16]),
    width_multiplier=st.sampled_from([0.5, 1.0, 1.5]),
    num_classes=st.integers(min_value=2, max_value=12),
)
def test_randomized_geometry_verifies_clean(
    family, norm, encoder, input_size, width_multiplier, num_classes
):
    _compile_and_verify(
        family,
        norm,
        encoder,
        input_size=input_size,
        num_classes=num_classes,
        width_multiplier=width_multiplier,
    )
