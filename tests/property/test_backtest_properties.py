"""Hypothesis property tests for the backtest Pareto frontier and the
threshold-schedule algebra.

Pareto laws (over randomly generated score points):

* **soundness** — no kept point is dominated by any input point;
* **identity** — every kept point comes from the input set, and every
  non-dominated input point is kept;
* **order invariance** — permuting the input changes neither membership nor
  the (canonical) output order.

Schedule laws (over randomly generated piecewise schedules and offsets):

* **totality** — every offset maps to exactly one segment (negative recorded
  offsets — arrivals before the first *completed* request — land in the
  opening segment), so a schedule is total over any trace span;
* **boundary assignment** — a segment-start offset belongs to the segment
  that starts there and its immediate predecessor offset to the previous
  one (half-open interval semantics);
* **reconstruction** — ``from_trace`` evaluates back to each record's own
  recorded knobs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serve import ScheduleSegment, ThresholdSchedule, pareto_frontier
from repro.serve.trace import Trace, TraceRecord

AXES_MAX = ("agreement",)
AXES_MIN = ("edp_mean", "model_latency_p99")


def points(min_size=0, max_size=12):
    scalar = st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)
    point = st.fixed_dictionaries({
        "agreement": scalar,
        "edp_mean": st.one_of(st.none(), scalar),
        "model_latency_p99": scalar,
    })
    return st.lists(point, min_size=min_size, max_size=max_size)


def _dominates(a, b):
    def value(p, axis, sign):
        v = p.get(axis)
        return float("inf") if v is None else sign * v

    axes = [(n, -1.0) for n in AXES_MAX] + [(n, 1.0) for n in AXES_MIN]
    mine = [value(a, n, s) for n, s in axes]
    theirs = [value(b, n, s) for n, s in axes]
    return (all(m <= t for m, t in zip(mine, theirs))
            and any(m < t for m, t in zip(mine, theirs)))


@settings(max_examples=60, deadline=None)
@given(points())
def test_no_kept_point_is_dominated(pts):
    frontier = pareto_frontier(pts)
    for kept in frontier:
        assert not any(_dominates(other, kept) for other in pts)


@settings(max_examples=60, deadline=None)
@given(points())
def test_every_kept_point_is_from_the_input(pts):
    frontier = pareto_frontier(pts)
    for kept in frontier:
        assert any(kept is p for p in pts)


@settings(max_examples=60, deadline=None)
@given(points(min_size=1))
def test_every_nondominated_input_point_is_kept(pts):
    frontier = pareto_frontier(pts)
    kept_ids = {id(p) for p in frontier}
    for p in pts:
        if not any(_dominates(other, p) for other in pts):
            assert id(p) in kept_ids


@settings(max_examples=60, deadline=None)
@given(points(), st.randoms(use_true_random=False))
def test_frontier_is_order_invariant_under_permutation(pts, rng):
    shuffled = list(pts)
    rng.shuffle(shuffled)
    original = pareto_frontier(pts)
    permuted = pareto_frontier(shuffled)
    key = lambda p: (p["agreement"], p["edp_mean"], p["model_latency_p99"])
    assert [key(p) for p in original] == [key(p) for p in permuted]


def test_empty_and_axisless_inputs():
    assert pareto_frontier([]) == []
    # No live axes at all: nothing is comparable, everything is kept.
    opaque = [{"foo": 1}, {"foo": 2}]
    assert pareto_frontier(opaque) == opaque


# --------------------------------------------------------------------------- #
# Schedule algebra
# --------------------------------------------------------------------------- #
def schedules():
    def build(raw):
        starts = [0.0]
        for gap in raw["gaps"]:
            starts.append(starts[-1] + gap)
        return ThresholdSchedule([
            ScheduleSegment(start, threshold, horizon)
            for start, threshold, horizon in zip(
                starts, raw["thresholds"], raw["horizons"])
        ])

    n = st.integers(min_value=1, max_value=6)
    return n.flatmap(lambda size: st.fixed_dictionaries({
        "gaps": st.lists(
            st.floats(0.001, 100.0, allow_nan=False, allow_infinity=False),
            min_size=size - 1, max_size=size - 1),
        "thresholds": st.lists(
            st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
            min_size=size, max_size=size),
        "horizons": st.lists(
            st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
            min_size=size, max_size=size),
    }).map(build))


@settings(max_examples=60, deadline=None)
@given(schedules(),
       st.floats(-1.0, 1000.0, allow_nan=False, allow_infinity=False))
def test_every_offset_lands_in_exactly_one_segment(schedule, offset):
    index = schedule.segment_index(offset)
    assert 0 <= index < len(schedule.segments)
    segment = schedule.segments[index]
    if offset < 0.0:
        # WAL offsets are relative to the first *completed* request, so
        # earlier arrivals are slightly negative: opening segment by fiat.
        assert index == 0
    else:
        assert segment.start <= offset
        if index + 1 < len(schedule.segments):
            assert offset < schedule.segments[index + 1].start
    # knobs_at is total and consistent with the located segment.
    assert schedule.knobs_at(offset) == (segment.threshold, segment.horizon)


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_boundary_offsets_belong_to_the_starting_segment(schedule):
    for i, segment in enumerate(schedule.segments):
        assert schedule.segment_index(segment.start) == i
        if i > 0:
            # Just below the boundary: still the previous segment.
            before = segment.start - min(1e-9, segment.start / 2.0)
            if before < segment.start:  # guard float underflow at tiny starts
                assert schedule.segment_index(before) == i - 1


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_segments_partition_by_construction(schedule):
    starts = [segment.start for segment in schedule.segments]
    assert starts[0] == 0.0
    assert starts == sorted(starts)
    assert len(set(starts)) == len(starts)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
              st.sampled_from([0.1, 0.3, 0.6, 0.9])),
    min_size=1, max_size=10, unique_by=lambda pair: pair[0]))
def test_from_trace_evaluates_back_to_recorded_knobs(arrivals):
    """Knob changes *between* arrivals reconstruct losslessly (same-offset
    knob changes are the documented exception — use RecordedSchedule)."""
    records = [
        TraceRecord(request_id=i, digest="00", arrival_offset=offset,
                    exit_timestep=1, prediction=0, score=0.5,
                    threshold=threshold, horizon=4)
        for i, (offset, threshold) in enumerate(sorted(arrivals))
    ]
    trace = Trace(header={}, records=records, rejections=[], clips={})
    schedule = ThresholdSchedule.from_trace(trace)
    for record in records:
        assert schedule.knobs_for(record) == (record.threshold, record.horizon)
