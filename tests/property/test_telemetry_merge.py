"""Property tests for cross-replica telemetry merging.

The replica pool aggregates serving metrics from N processes into one
:class:`~repro.serve.Telemetry`.  The invariant that makes those aggregates
trustworthy: however the raw per-request samples are *partitioned* across
replica telemetries, merging the parts must yield exactly the metrics of the
pooled samples — latency percentiles, exit histograms, energy totals,
throughput, accuracy, rejection counts.  Percentiles sort internally, so
partition order cannot move them at all; mean-style metrics may differ only
by float summation order (asserted to 1e-9 relative).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.serve import MetricsRegistry, RequestResult, SpanTracker, Telemetry

MAX_TIMESTEPS = 6


def _result(index: int, draw) -> RequestResult:
    arrival, queue_delay, service = draw["timing"][index]
    start = arrival + queue_delay
    finish = start + service
    energy = draw["energy"][index]
    return RequestResult(
        request_id=index,
        prediction=int(draw["predictions"][index]),
        exit_timestep=int(draw["exits"][index]),
        score=float(draw["scores"][index]),
        label=int(draw["labels"][index]) if draw["labels"][index] >= 0 else None,
        arrival_time=arrival,
        start_time=start,
        finish_time=finish,
        energy=energy,
        edp=None if energy is None else energy * service,
    )


positive_floats = st.floats(1e-6, 10.0, allow_nan=False, allow_infinity=False)


@st.composite
def sample_sets(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    fields = {
        "timing": [
            (draw(st.floats(0.0, 100.0)), draw(positive_floats), draw(positive_floats))
            for _ in range(count)
        ],
        "predictions": [draw(st.integers(0, 9)) for _ in range(count)],
        "exits": [draw(st.integers(1, MAX_TIMESTEPS)) for _ in range(count)],
        "scores": [draw(st.floats(0.0, 1.0)) for _ in range(count)],
        # -1 encodes "no label" so accuracy mixes labelled/unlabelled.
        "labels": [draw(st.integers(-1, 9)) for _ in range(count)],
        "energy": [
            draw(st.one_of(st.none(), positive_floats)) for _ in range(count)
        ],
    }
    results = [_result(index, fields) for index in range(count)]
    partition = [draw(st.integers(0, 3)) for _ in range(count)]
    rejections = [draw(st.integers(0, 3)) for _ in range(4)]
    return results, partition, rejections


def _record_all(telemetry: Telemetry, results, rejected=0) -> None:
    for result in results:
        telemetry.record_completion(result)
    for _ in range(rejected):
        telemetry.record_rejection()


@settings(max_examples=60, deadline=None)
@given(sample_sets())
def test_merged_telemetry_equals_pooled_raw_samples(data):
    results, partition, rejections = data

    pooled = Telemetry()
    _record_all(pooled, results, rejected=sum(rejections))

    parts = [Telemetry() for _ in range(4)]
    for result, part_index in zip(results, partition):
        parts[part_index].record_completion(result)
    for part, rejected in zip(parts, rejections):
        for _ in range(rejected):
            part.record_rejection()

    merged = Telemetry()
    for part in parts:
        merged.merge_from(part)

    # Exit histograms and counts are integer-exact.
    np.testing.assert_array_equal(
        merged.exit_histogram(MAX_TIMESTEPS), pooled.exit_histogram(MAX_TIMESTEPS)
    )
    assert merged.completed == pooled.completed
    assert merged.rejected == pooled.rejected

    # Percentiles sort the pooled multiset internally: bitwise-equal.
    assert merged.latency_percentiles() == pooled.latency_percentiles()

    merged_stats = merged.snapshot()
    pooled_stats = pooled.snapshot()
    assert set(merged_stats) == set(pooled_stats)
    for key in pooled_stats:
        if key in ("latency_p50", "latency_p95", "latency_p99", "completed",
                   "rejected", "throughput_rps", "queue_depth_max"):
            assert merged_stats[key] == pooled_stats[key], key
        else:
            # Mean-style metrics may differ by summation order only.
            np.testing.assert_allclose(
                merged_stats[key], pooled_stats[key], rtol=1e-9, err_msg=key
            )

    accuracy = pooled.accuracy()
    if accuracy is None:
        assert merged.accuracy() is None
    else:
        np.testing.assert_allclose(merged.accuracy(), accuracy, rtol=1e-12)


@settings(max_examples=40, deadline=None)
@given(sample_sets())
def test_merged_registries_equal_pooled_registry(data):
    """The metrics-registry mirror of the telemetry invariant: filling one
    registry per replica telemetry and merging them must equal filling a
    single registry from the pooled samples — counters and histogram bucket
    counts integer-exact, float sums to summation-order tolerance."""
    results, partition, rejections = data

    pooled_telemetry = Telemetry()
    _record_all(pooled_telemetry, results, rejected=sum(rejections))

    parts = [Telemetry() for _ in range(4)]
    for result, part_index in zip(results, partition):
        parts[part_index].record_completion(result)
    for part, rejected in zip(parts, rejections):
        for _ in range(rejected):
            part.record_rejection()
    # Gauges ride along: each part samples its own queue depth/occupancy.
    for depth, part in enumerate(parts):
        part.record_queue_depth(depth)
        part.record_occupancy(depth, 4)
        pooled_telemetry.record_queue_depth(depth)
        pooled_telemetry.record_occupancy(depth, 4)

    pooled = MetricsRegistry()
    pooled_telemetry.fill_registry(pooled, max_timesteps=MAX_TIMESTEPS)
    merged = MetricsRegistry()
    for part in parts:
        registry = MetricsRegistry()
        part.fill_registry(registry, max_timesteps=MAX_TIMESTEPS)
        merged.merge(registry)

    merged_json, pooled_json = merged.to_json(), pooled.to_json()
    assert set(merged_json) == set(pooled_json)
    for name, pooled_metric in pooled_json.items():
        merged_metric = merged_json[name]
        assert merged_metric["type"] == pooled_metric["type"], name
        if pooled_metric["type"] == "histogram":
            # Bucket assignment is a pure function of the value: exact.
            assert merged_metric["buckets"] == pooled_metric["buckets"], name
            assert merged_metric["counts"] == pooled_metric["counts"], name
            assert merged_metric["count"] == pooled_metric["count"], name
            np.testing.assert_allclose(
                merged_metric["sum"], pooled_metric["sum"], rtol=1e-9,
                err_msg=name,
            )
        elif name == "repro_request_energy_total":
            # The one float-summed counter: summation order may differ.
            np.testing.assert_allclose(
                merged_metric["value"], pooled_metric["value"], rtol=1e-9,
                err_msg=name,
            )
        else:
            # Integer-valued counters and max-gauges are exact.
            assert merged_metric["value"] == pooled_metric["value"], name
    # Both exports agree textually up to the float-summed fields.
    assert merged.to_prometheus().count("# TYPE") == \
        pooled.to_prometheus().count("# TYPE")


@settings(max_examples=40, deadline=None)
@given(sample_sets())
def test_merged_span_state_equals_pooled_spans(data):
    """Span state from N replicas unions disjoint request ids: merging the
    exported states reproduces the pooled tracker's spans and therefore
    every per-stage duration multiset exactly."""
    results, partition, _ = data

    pooled = SpanTracker()
    parts = [SpanTracker() for _ in range(4)]
    for result, part_index in zip(results, partition):
        completed_at = result.finish_time + 1e-4
        pooled.record_result(result, completed_at)
        parts[part_index].record_result(result, completed_at)

    merged = SpanTracker()
    for part in parts:
        merged.merge_state(part.export_state())

    assert len(merged) == len(pooled)
    assert {s.request_id: s.events for s in merged.spans()} == \
        {s.request_id: s.events for s in pooled.spans()}

    merged_durations = merged.stage_durations()
    pooled_durations = pooled.stage_durations()
    assert set(merged_durations) == set(pooled_durations)
    for stage in pooled_durations:
        assert sorted(merged_durations[stage]) == sorted(pooled_durations[stage])
    # Percentiles sort internally (bitwise-equal); means are float sums over
    # differently-ordered spans, so summation order is the only slack.
    merged_summary, pooled_summary = merged.summary(), pooled.summary()
    assert set(merged_summary) == set(pooled_summary)
    for stage, pooled_entry in pooled_summary.items():
        merged_entry = merged_summary[stage]
        assert set(merged_entry) == set(pooled_entry)
        for key, value in pooled_entry.items():
            if key == "mean":
                np.testing.assert_allclose(
                    merged_entry[key], value, rtol=1e-9,
                    err_msg=f"{stage}.{key}",
                )
            else:
                assert merged_entry[key] == value, f"{stage}.{key}"


@settings(max_examples=30, deadline=None)
@given(sample_sets())
def test_gauge_only_export_never_double_counts(data):
    """The replica wire format (include_results=False) ships gauges but not
    completions — merging it must not change any completion-derived metric."""
    results, partition, _ = data
    parent = Telemetry()
    _record_all(parent, results)
    before = parent.snapshot()

    child = Telemetry()
    _record_all(child, results)
    child.record_queue_depth(3)
    child.record_occupancy(2, 4)
    state = child.export_state(include_results=False)
    assert state["recent_latencies"] == []
    assert state["first_arrival"] is None and state["last_finish"] is None
    parent.merge_state(state)

    after = parent.snapshot()
    assert after["completed"] == before["completed"]
    assert after.get("latency_p95") == before.get("latency_p95")
    assert after.get("throughput_rps") == before.get("throughput_rps")
    assert "queue_depth_mean" in after and "occupancy_mean" in after
