"""Hypothesis property tests for the autograd engine.

These check algebraic invariants (linearity of the gradient, adjointness of
im2col/col2im, softmax normalization) over randomly generated shapes and
values rather than hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, conv2d, cross_entropy, softmax
from repro.autograd.ops import col2im, im2col


def finite_arrays(shape, min_value=-5.0, max_value=5.0):
    return arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(min_value, max_value, allow_nan=False, allow_infinity=False, width=32),
    )


@settings(max_examples=30, deadline=None)
@given(finite_arrays((4, 3)), finite_arrays((4, 3)))
def test_addition_gradient_is_one_for_both_operands(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    assert np.allclose(ta.grad, 1.0)
    assert np.allclose(tb.grad, 1.0)


@settings(max_examples=30, deadline=None)
@given(finite_arrays((3, 4)), finite_arrays((3, 4)))
def test_product_rule(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta * tb).sum().backward()
    assert np.allclose(ta.grad, b, atol=1e-5)
    assert np.allclose(tb.grad, a, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(finite_arrays((5,)), st.floats(0.1, 3.0), st.floats(0.1, 3.0))
def test_backward_is_linear_in_seed(x, alpha, beta):
    """grad(alpha * f) + grad(beta * f) == grad((alpha + beta) * f)."""
    def run(scale):
        t = Tensor(x, requires_grad=True)
        (t * t).sum().backward(np.array(scale, dtype=np.float64))
        return t.grad.copy()

    combined = run(alpha + beta)
    assert np.allclose(run(alpha) + run(beta), combined, rtol=1e-4, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(finite_arrays((2, 6)))
def test_softmax_is_a_probability_distribution(logits):
    probs = softmax(Tensor(logits)).data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(finite_arrays((3, 7)), st.integers(0, 6))
def test_cross_entropy_nonnegative_and_grad_sums_to_zero(logits, label):
    labels = np.full(3, label, dtype=np.int64)
    t = Tensor(logits, requires_grad=True)
    loss = cross_entropy(t, labels)
    assert float(loss.data) >= -1e-6
    loss.backward()
    # Softmax-CE gradient rows sum to zero (probabilities minus one-hot).
    assert np.allclose(t.grad.sum(axis=-1), 0.0, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 3),   # batch
    st.integers(1, 3),   # channels
    st.integers(4, 8),   # spatial
    st.integers(1, 3),   # kernel
    st.integers(1, 2),   # stride
    st.integers(0, 1),   # padding
)
def test_im2col_col2im_adjointness(n, c, size, kernel, stride, padding):
    if kernel > size + 2 * padding:
        return
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, c, size, size))
    cols, _, _ = im2col(x, kernel, stride, padding)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, kernel, stride, padding)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-6)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(1, 2),
    st.integers(1, 3),
    st.integers(1, 4),
    st.integers(4, 7),
)
def test_conv2d_matches_naive_loop(n, c_in, c_out, size):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(n, c_in, size, size))
    w = rng.normal(size=(c_out, c_in, 3, 3))
    out = conv2d(Tensor(x), Tensor(w), stride=1, padding=1).data

    padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    expected = np.zeros((n, c_out, size, size))
    for i in range(size):
        for j in range(size):
            patch = padded[:, :, i : i + 3, j : j + 3]
            expected[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    assert np.allclose(out, expected, atol=1e-4)
