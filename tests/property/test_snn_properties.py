"""Hypothesis property tests for spiking-neuron and hardware-model invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.imc import HardwareConfig, LayerGeometry, LayerMapping, RRAMDeviceModel
from repro.snn import LIFNeuron, TriangularSurrogate


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (4, 6), elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False, width=32)),
    st.floats(0.1, 1.0),
    st.floats(0.2, 2.0),
)
def test_lif_spikes_are_binary_and_membrane_below_threshold_after_hard_reset(current, tau, v_th):
    lif = LIFNeuron(tau=tau, v_threshold=v_th, reset="hard")
    spikes = lif(Tensor(current))
    assert set(np.unique(spikes.data)).issubset({0.0, 1.0})
    # After a hard reset no membrane value may still exceed the threshold.
    assert (lif.membrane.data <= v_th + 1e-6).all()


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (8,), elements=st.floats(0.0, 0.375, allow_nan=False, allow_infinity=False, width=32)),
    st.integers(1, 6),
)
def test_if_neuron_conserves_charge_with_soft_reset(current, steps):
    """With soft reset, total input charge = remaining membrane + spikes * V_th."""
    neuron = LIFNeuron(tau=1.0, v_threshold=1.0, reset="soft")
    total_spikes = np.zeros_like(current)
    for _ in range(steps):
        total_spikes += neuron(Tensor(current[None])).data[0]
    remaining = neuron.membrane.data[0]
    np.testing.assert_allclose(current * steps, remaining + total_spikes, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (20,), elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False, width=32)), st.floats(0.3, 2.0))
def test_triangular_surrogate_nonnegative_bounded_and_peaked(u, v_th):
    surrogate = TriangularSurrogate()
    grads = surrogate(u, v_th)
    assert (grads >= 0).all()
    assert (grads <= v_th + 1e-9).all()
    assert surrogate(np.array([v_th]), v_th)[0] == np.float64(v_th)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (12, 9), elements=st.floats(-1, 1, allow_nan=False, allow_infinity=False, width=32)))
def test_device_roundtrip_error_bounded_by_quantization(weights):
    device = RRAMDeviceModel(HardwareConfig.paper_default())
    max_abs = float(np.max(np.abs(weights)))
    if max_abs == 0:
        return
    recovered = device.perturb_weights(weights, sigma=0.0, rng=np.random.default_rng(0))
    # With zero variation the only error sources are the 8-bit weight and
    # 4-bit conductance quantization: bounded by one conductance LSB.
    lsb = max_abs / (HardwareConfig.paper_default().conductance_levels - 1)
    assert np.abs(recovered - weights).max() <= lsb + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 512),   # in channels
    st.integers(1, 512),   # out channels
    st.integers(1, 5),     # kernel
    st.integers(1, 1024),  # output positions
    st.floats(0.0, 1.0),   # activity
)
def test_layer_mapping_counts_are_consistent(c_in, c_out, kernel, positions, activity):
    config = HardwareConfig.paper_default()
    geometry = LayerGeometry(
        name="layer",
        kind="conv",
        in_channels=c_in,
        out_channels=c_out,
        kernel_size=kernel,
        output_positions=positions,
        input_activity=activity,
        weight_rows=kernel * kernel * c_in,
        weight_cols=c_out,
    )
    mapping = LayerMapping.from_geometry(geometry, config)
    # Enough crossbars to hold every weight cell.
    total_cells = geometry.weight_rows * geometry.weight_cols * config.cells_per_weight
    assert mapping.num_crossbars * config.crossbar_size**2 >= total_cells
    # Resource hierarchy is consistent.
    assert mapping.num_pes * config.crossbars_per_pe >= mapping.num_crossbars
    assert mapping.num_tiles * config.crossbars_per_tile >= mapping.num_crossbars
    # Event counts are non-negative and activity-bounded.
    assert 0 <= mapping.row_activations <= positions * geometry.weight_rows * mapping.col_splits + 1e-6
    assert mapping.lif_updates == positions * c_out
