"""Error-path tests for the plan-IR verifier.

Every test compiles a *valid* plan, mutates exactly one contract, and
asserts that :func:`verify_plan` pinpoints the violation — right error,
right op index, right register — instead of merely raising something.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.planverify import PlanVerificationError, verify_plan
from repro.autograd import float64_enabled
from repro.runtime import compile_network
from repro.runtime.plan import FoldedConvNormOp, LIFOp, LinearOp
from repro.snn import spiking_resnet, spiking_vgg
from repro.utils import seed_everything

requires_default_policy = pytest.mark.skipif(
    float64_enabled(), reason="suite is running under REPRO_FLOAT64=1"
)


def _vgg_plan():
    """A freshly compiled (and therefore already verified) tiny VGG plan."""
    seed_everything(1)
    model = spiking_vgg("tiny", num_classes=5, input_size=8, default_timesteps=3)
    plan = compile_network(model.eval())
    # CompiledPlan holds only a weak reference to its model; pin it so
    # plan.model stays resolvable for the lifetime of each test.
    plan.test_keepalive_model = model
    return plan


class TestCleanPlans:
    def test_vgg_verifies_clean_with_concrete_shape(self):
        plan = _vgg_plan()
        assert verify_plan(plan, input_shape=(3, 8, 8)) is plan

    def test_resnet_verifies_clean_with_concrete_shape(self):
        seed_everything(2)
        model = spiking_resnet("tiny", num_classes=5, input_size=8).eval()
        plan = compile_network(model)
        assert verify_plan(plan, input_shape=(3, 8, 8)) is plan

    def test_bad_input_shape_arity_rejected(self):
        with pytest.raises(ValueError, match="channels, height, width"):
            verify_plan(_vgg_plan(), input_shape=(3, 8))


class TestRegisterDiscipline:
    def test_double_write_names_both_ops(self):
        plan = _vgg_plan()
        # Make op[2] clobber op[0]'s destination: single assignment breaks.
        plan.ops[2].dst = plan.ops[0].dst
        with pytest.raises(PlanVerificationError, match="written twice") as info:
            verify_plan(plan)
        assert info.value.op_index == 2
        assert info.value.register == plan.ops[0].dst
        assert "first write at op[0]" in str(info.value)

    def test_read_before_write(self):
        plan = _vgg_plan()
        # op[1] now reads a register only op[3] will write.
        plan.ops[1].src = plan.ops[3].dst
        with pytest.raises(
            PlanVerificationError, match="read-before-write"
        ) as info:
            verify_plan(plan)
        assert info.value.op_index == 1
        assert info.value.register == plan.ops[3].dst

    def test_write_to_input_register_rejected(self):
        plan = _vgg_plan()
        plan.ops[2].dst = 0
        with pytest.raises(
            PlanVerificationError, match="register 0 is the input frame"
        ) as info:
            verify_plan(plan)
        assert info.value.op_index == 2

    def test_register_out_of_range(self):
        plan = _vgg_plan()
        plan.ops[2].dst = plan.num_registers
        with pytest.raises(PlanVerificationError, match="out of range") as info:
            verify_plan(plan)
        assert info.value.op_index == 2
        assert info.value.found == plan.num_registers

    def test_output_register_never_written(self):
        plan = _vgg_plan()
        # Drop the classifier op: nothing produces the logits register.
        plan.ops.pop()
        with pytest.raises(
            PlanVerificationError, match="output register is never written"
        ) as info:
            verify_plan(plan)
        assert info.value.register == plan.output_register


class TestShapeAndDtypePropagation:
    def test_channel_mismatch_at_first_conv(self):
        plan = _vgg_plan()
        with pytest.raises(
            PlanVerificationError, match="channels disagree"
        ) as info:
            verify_plan(plan, input_shape=(4, 8, 8))
        assert info.value.op_index == 0
        assert info.value.register == 0

    def test_spatial_mismatch_surfaces_at_the_linear_op(self):
        plan = _vgg_plan()
        linear_index = next(
            i for i, op in enumerate(plan.ops) if isinstance(op, LinearOp)
        )
        # 12x12 input flows fine through convs/pools but flattens to a
        # width the classifier's fan-in (built for 8x8) cannot accept.
        with pytest.raises(
            PlanVerificationError, match="fan-in disagrees"
        ) as info:
            verify_plan(plan, input_shape=(3, 12, 12))
        assert info.value.op_index == linear_index

    def test_degenerate_spatial_dim_rejected(self):
        plan = _vgg_plan()
        with pytest.raises(PlanVerificationError) as info:
            verify_plan(plan, input_shape=(3, 1, 1))
        # The 2x2 pool over a 1x1 map is the eventual contradiction.
        assert info.value.op_index is not None

    @requires_default_policy
    def test_float64_constant_violates_weak_scalar_policy(self):
        plan = _vgg_plan()
        linear = next(op for op in plan.ops if isinstance(op, LinearOp))
        linear.module.weight.data = linear.module.weight.data.astype(
            np.float64  # dtype-ok: deliberately corrupting a constant to exercise the verifier
        )
        with pytest.raises(
            PlanVerificationError, match="weak-scalar float32 policy"
        ):
            verify_plan(plan)


class TestModeInvariants:
    @requires_default_policy
    def test_folded_op_in_training_mode(self):
        plan = _vgg_plan()
        fold_index = next(
            i for i, op in enumerate(plan.ops)
            if isinstance(op, FoldedConvNormOp)
        )
        plan.model.train()
        with pytest.raises(
            PlanVerificationError, match="training"
        ) as info:
            verify_plan(plan)
        assert info.value.op_index == fold_index

    @requires_default_policy
    def test_folded_op_in_float64_plan(self):
        plan = _vgg_plan()
        plan.float64_mode = True
        with pytest.raises(PlanVerificationError, match="REPRO_FLOAT64"):
            verify_plan(plan)

    @requires_default_policy
    def test_folded_op_over_instrumented_module(self):
        plan = _vgg_plan()
        fold = next(op for op in plan.ops if isinstance(op, FoldedConvNormOp))
        fold.conv.__dict__["forward"] = lambda x: x
        try:
            with pytest.raises(
                PlanVerificationError, match="instrumented"
            ):
                verify_plan(plan)
        finally:
            del fold.conv.__dict__["forward"]


class TestStemAndStateMetadata:
    @requires_default_policy
    def test_tampered_stem_len(self):
        plan = _vgg_plan()
        assert plan.stem_len > 0
        plan.stem_len = 0
        with pytest.raises(PlanVerificationError, match="stem_len disagrees"):
            verify_plan(plan)

    @requires_default_policy
    def test_dropped_stem_register_is_a_liveness_violation(self):
        plan = _vgg_plan()
        assert plan.stem_registers
        missing = plan.stem_registers[0]
        plan.stem_registers = ()
        with pytest.raises(
            PlanVerificationError, match="scratch-liveness"
        ) as info:
            verify_plan(plan)
        assert info.value.register == missing
        # The first post-stem op is the one that reads the unrestored value.
        assert info.value.op_index == plan.stem_len

    def test_tampered_output_needs_copy(self):
        plan = _vgg_plan()
        plan.output_needs_copy = not plan.output_needs_copy
        with pytest.raises(
            PlanVerificationError, match="output_needs_copy"
        ):
            verify_plan(plan)

    def test_tampered_num_lif(self):
        plan = _vgg_plan()
        plan.num_lif += 1
        with pytest.raises(PlanVerificationError, match="num_lif"):
            verify_plan(plan)

    def test_duplicate_lif_state_slot(self):
        plan = _vgg_plan()
        lif_ops = [op for op in plan.ops if isinstance(op, LIFOp)]
        assert len(lif_ops) >= 2
        lif_ops[1].state_index = lif_ops[0].state_index
        with pytest.raises(
            PlanVerificationError, match="share one membrane state slot"
        ):
            verify_plan(plan)


class TestCompileIntegration:
    def test_compile_network_returns_a_verified_plan(self):
        # compile_network runs verify_plan internally; a second explicit
        # verification of the same object must agree.
        plan = _vgg_plan()
        assert verify_plan(plan) is plan

    def test_error_message_carries_location_and_evidence(self):
        plan = _vgg_plan()
        plan.ops[2].dst = plan.ops[0].dst
        with pytest.raises(PlanVerificationError) as info:
            verify_plan(plan)
        message = str(info.value)
        assert message.startswith("plan verification failed: op[2]")
        assert f"r{plan.ops[0].dst}" in message
