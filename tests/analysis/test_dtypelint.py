"""Unit tests for the dtype-policy linter and the shared pragma machinery."""

from __future__ import annotations

import textwrap

from repro.analysis import dtypelint
from repro.analysis.lintbase import scan_pragmas


def _lint(source: str, modpath: str = "core/example.py"):
    return dtypelint.lint_source(
        f"src/repro/{modpath}", modpath, textwrap.dedent(source)
    )


class TestFloat64Construction:
    def test_bare_np_float64_is_flagged(self):
        result = _lint(
            """
            import numpy as np
            x = np.zeros(4, dtype=np.float64)
            """
        )
        assert [f.rule for f in result.findings] == ["float64-construction"]
        assert result.findings[0].line == 3

    def test_dtype_float_builtin_is_flagged(self):
        result = _lint(
            """
            import numpy as np
            x = np.zeros(4, dtype=float)
            """
        )
        assert [f.rule for f in result.findings] == ["float64-construction"]

    def test_dtype_string_spellings_are_flagged(self):
        for spelling in ("float64", "double", "f8"):
            result = _lint(
                f"""
                import numpy as np
                x = np.zeros(4, dtype="{spelling}")
                """
            )
            assert result.findings, spelling

    def test_float32_is_clean(self):
        result = _lint(
            """
            import numpy as np
            x = np.zeros(4, dtype=np.float32)
            y = np.asarray([1.0], dtype="float32")
            """
        )
        assert not result.findings and not result.errors

    def test_policy_module_is_exempt(self):
        result = _lint(
            """
            import numpy as np
            DOUBLE = np.float64
            """,
            modpath="autograd/dtypes.py",
        )
        assert not result.findings and not result.errors


class TestNakedCoercion:
    def test_naked_asarray_in_kernel_module_is_flagged(self):
        result = _lint(
            """
            import numpy as np
            def f(x):
                return np.asarray(x)
            """,
            modpath="runtime/kernels.py",
        )
        assert [f.rule for f in result.findings] == ["naked-coercion"]

    def test_asarray_with_dtype_is_clean(self):
        result = _lint(
            """
            import numpy as np
            from repro.autograd.dtypes import DEFAULT_DTYPE
            def f(x):
                return np.asarray(x, dtype=DEFAULT_DTYPE)
            """,
            modpath="runtime/kernels.py",
        )
        assert not result.findings

    def test_naked_asarray_outside_kernel_modules_is_clean(self):
        result = _lint(
            """
            import numpy as np
            def f(x):
                return np.asarray(x)
            """,
            modpath="core/example.py",
        )
        assert not result.findings


class TestFloatLiteralOperand:
    def test_float_literal_operand_in_hot_module_is_flagged(self):
        result = _lint(
            """
            import numpy as np
            def f(x, out):
                np.subtract(1.0, x, out=out)
            """,
            modpath="runtime/kernels.py",
        )
        assert [f.rule for f in result.findings] == ["float-literal-operand"]

    def test_int_literal_operand_is_clean(self):
        result = _lint(
            """
            import numpy as np
            def f(x, out):
                np.maximum(0, x, out=out)
            """,
            modpath="runtime/kernels.py",
        )
        assert not result.findings

    def test_float_literal_outside_hot_modules_is_clean(self):
        result = _lint(
            """
            import numpy as np
            def f(x):
                return np.maximum(0.0, x)
            """,
            modpath="runtime/executor.py",
        )
        assert not result.findings


class TestPragmas:
    def test_pragma_suppresses_and_keeps_the_reason(self):
        result = _lint(
            """
            import numpy as np
            x = np.zeros(4, dtype=np.float64)  # dtype-ok: decision-side scores
            """
        )
        assert not result.findings and not result.errors
        assert len(result.suppressed) == 1
        assert result.suppressed[0].suppressed_by == "decision-side scores"

    def test_bare_pragma_is_an_error(self):
        result = _lint(
            """
            import numpy as np
            x = np.zeros(4, dtype=np.float64)  # dtype-ok
            """
        )
        assert result.findings  # the finding stays active
        assert any("bare" in e.message for e in result.errors)

    def test_stale_pragma_is_an_error(self):
        result = _lint(
            """
            import numpy as np
            x = np.zeros(4, dtype=np.float32)  # dtype-ok: nothing to excuse
            """
        )
        assert not result.findings
        assert any("stale" in e.message for e in result.errors)

    def test_pragma_text_inside_a_docstring_is_ignored(self):
        source = '''
        """Docs showing the pragma syntax: # dtype-ok: <reason>."""
        import numpy as np
        x = np.zeros(4, dtype=np.float32)
        '''
        result = _lint(source)
        assert not result.findings and not result.errors

    def test_scan_pragmas_only_sees_comment_tokens(self):
        reasons, bad = scan_pragmas(
            'msg = "use # dtype-ok: reason here"\ny = 1  # dtype-ok: real\n',
            "dtype-ok",
        )
        assert reasons == {2: "real"}
        assert bad == []

    def test_syntax_error_is_reported_not_crashed(self):
        result = _lint("def broken(:\n")
        assert any(f.rule == "parse-error" for f in result.findings + result.errors)
