"""Tests for the runtime lock-order tracker (REPRO_LOCK_CHECK=1 mode).

Every test builds a *private* :class:`LockGraph` and hands it to
:class:`NamedLock` explicitly, so nothing here pollutes the process-global
graph the CI shard exports.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import lockorder
from repro.analysis.lockorder import (
    LockGraph,
    LockOrderError,
    NamedLock,
    lock_check_enabled,
    named_lock,
)


def _pair(graph):
    return NamedLock("outer", graph), NamedLock("inner", graph)


class TestAcquisitionTracking:
    def test_nesting_records_an_edge_with_a_call_site(self):
        graph = LockGraph()
        outer, inner = _pair(graph)
        with outer:
            with inner:
                pass
        snapshot = graph.snapshot()
        assert {"outer", "inner"} <= set(snapshot["locks"])
        (edge,) = snapshot["edges"]
        assert (edge["from"], edge["to"]) == ("outer", "inner")
        assert "test_lockorder.py" in edge["site"]

    def test_sequential_acquisition_records_no_edge(self):
        graph = LockGraph()
        outer, inner = _pair(graph)
        with outer:
            pass
        with inner:
            pass
        assert graph.snapshot()["edges"] == []

    def test_release_unwinds_the_held_stack(self):
        graph = LockGraph()
        lock = NamedLock("solo", graph)
        with lock:
            assert graph.held_by_current_thread("solo")
        assert not graph.held_by_current_thread("solo")
        assert not lock.locked()


class TestViolations:
    def test_inverted_order_raises_and_keeps_the_graph_acyclic(self):
        graph = LockGraph()
        a, b = NamedLock("a", graph), NamedLock("b", graph)
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError, match="cycle") as info:
            with b:
                with a:
                    pass
        # The report names both the offending edge and the recorded path.
        assert "'a'" in str(info.value) and "'b'" in str(info.value)
        # The bad edge was rejected *before* insertion: the graph stays
        # acyclic and both locks are free again.
        graph.assert_acyclic()
        assert not a.locked() and not b.locked()

    def test_transitive_cycle_is_detected(self):
        graph = LockGraph()
        a, b, c = (NamedLock(n, graph) for n in "abc")
        with a, b:
            pass
        with b, c:
            pass
        with pytest.raises(LockOrderError, match="cycle"):
            with c, a:
                pass
        graph.assert_acyclic()

    def test_same_thread_reacquire_raises_instead_of_deadlocking(self):
        graph = LockGraph()
        lock = NamedLock("self", graph)
        with lock:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()
            # The failed re-acquire must not have corrupted the held state.
            assert graph.held_by_current_thread("self")
        assert not lock.locked()

    def test_nonblocking_probe_returns_false_while_held(self):
        # Condition._is_owned probes acquire(False) on the wrapped lock and
        # relies on a plain False, not an exception.
        graph = LockGraph()
        lock = NamedLock("probe", graph)
        with lock:
            assert lock.acquire(blocking=False) is False


class TestConditionIntegration:
    def test_condition_wait_notify_roundtrip(self):
        graph = LockGraph()
        lock = NamedLock("serve.queue.test", graph)
        ready = threading.Condition(lock)
        items = []
        got = []

        def consumer():
            with ready:
                while not items:
                    ready.wait(timeout=5)
                got.append(items.pop())

        thread = threading.Thread(target=consumer)
        thread.start()
        with ready:
            items.append("payload")
            ready.notify()
        thread.join(timeout=5)
        assert got == ["payload"]
        assert not lock.locked()
        assert not graph.held_by_current_thread("serve.queue.test")

    def test_wait_timeout_leaves_a_consistent_stack(self):
        graph = LockGraph()
        lock = NamedLock("timed", graph)
        condition = threading.Condition(lock)
        with condition:
            assert condition.wait(timeout=0.01) is False
            assert graph.held_by_current_thread("timed")
        assert not lock.locked()


class TestFactoryAndExports:
    def test_factory_returns_plain_lock_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_CHECK", raising=False)
        assert not lock_check_enabled()
        lock = named_lock("plain")
        assert not isinstance(lock, NamedLock)
        with lock:
            pass

    def test_factory_returns_named_lock_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_CHECK", "1")
        monkeypatch.setattr(lockorder, "_GRAPH", LockGraph())
        assert lock_check_enabled()
        lock = named_lock("tracked")
        assert isinstance(lock, NamedLock)
        assert lock.name == "tracked"

    def test_dump_graph_writes_the_ci_artifact(self, monkeypatch, tmp_path):
        graph = LockGraph()
        monkeypatch.setattr(lockorder, "_GRAPH", graph)
        outer, inner = _pair(graph)
        with outer, inner:
            pass
        artifact = tmp_path / "lock-graph.json"
        lockorder.dump_graph(str(artifact))
        payload = json.loads(artifact.read_text())
        assert {"outer", "inner"} <= set(payload["locks"])
        assert [(e["from"], e["to"]) for e in payload["edges"]] == [
            ("outer", "inner")
        ]

    def test_reset_tracking_clears_edges(self, monkeypatch):
        graph = LockGraph()
        monkeypatch.setattr(lockorder, "_GRAPH", graph)
        outer, inner = _pair(graph)
        with outer, inner:
            pass
        assert lockorder.acquisition_graph()["edges"]
        lockorder.reset_tracking()
        assert lockorder.acquisition_graph() == {"locks": [], "edges": []}


class TestCrossThread:
    def test_blocking_handoff_between_threads(self):
        graph = LockGraph()
        lock = NamedLock("handoff", graph)
        order = []
        lock.acquire()

        def taker():
            lock.acquire()
            order.append("taken")
            lock.release()

        thread = threading.Thread(target=taker)
        thread.start()
        order.append("releasing")
        lock.release()
        thread.join(timeout=5)
        assert order == ["releasing", "taken"]
        assert not lock.locked()

    def test_per_thread_held_stacks_are_independent(self):
        graph = LockGraph()
        lock = NamedLock("shared", graph)
        seen = {}

        def worker():
            seen["held_in_thread"] = graph.held_by_current_thread("shared")

        with lock:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=5)
        assert seen["held_in_thread"] is False
