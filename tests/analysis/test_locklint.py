"""Unit tests for the blocking-call-under-lock AST lint."""

from __future__ import annotations

import textwrap

from repro.analysis import locklint


def _lint(source: str):
    return locklint.lint_source(
        "src/repro/serve/example.py", "serve/example.py", textwrap.dedent(source)
    )


class TestBlockingCallUnderLock:
    def test_send_under_lock_is_flagged(self):
        result = _lint(
            """
            def push(self, payload):
                with self._lock:
                    self.pipe.send(payload)
            """
        )
        assert [f.rule for f in result.findings] == ["blocking-call-under-lock"]
        assert result.findings[0].line == 4

    def test_fsync_under_condition_handle_is_flagged(self):
        result = _lint(
            """
            import os
            def flush(self):
                with self._not_empty:
                    os.fsync(self.fd)
            """
        )
        assert [f.rule for f in result.findings] == ["blocking-call-under-lock"]

    def test_call_after_the_with_block_is_clean(self):
        result = _lint(
            """
            def push(self, payload):
                with self._lock:
                    self.items.append(payload)
                self.pipe.send(payload)
            """
        )
        assert not result.findings

    def test_non_lock_context_manager_is_clean(self):
        result = _lint(
            """
            def write(self, path, payload):
                with open(path, "wb") as handle:
                    self.pipe.send(payload)
            """
        )
        assert not result.findings

    def test_wait_is_sanctioned(self):
        # Condition.wait releases the lock while blocking — the one legal
        # way to block "under" one.
        result = _lint(
            """
            def get(self):
                with self._not_empty:
                    while not self.items:
                        self._not_empty.wait()
            """
        )
        assert not result.findings

    def test_nested_function_body_is_deferred(self):
        result = _lint(
            """
            def schedule(self):
                with self._lock:
                    def later():
                        self.pipe.send(b"x")
                    self.callbacks.append(later)
            """
        )
        assert not result.findings

    def test_nested_lambda_is_deferred(self):
        result = _lint(
            """
            def schedule(self):
                with self._lock:
                    self.callbacks.append(lambda: self.pipe.recv())
            """
        )
        assert not result.findings

    def test_nested_with_keeps_the_outer_lock_context(self):
        result = _lint(
            """
            def flush(self, path):
                with self._lock:
                    with open(path, "wb") as handle:
                        handle.write(b"x")
                        import os
                        os.fsync(handle.fileno())
            """
        )
        assert [f.rule for f in result.findings] == ["blocking-call-under-lock"]

    def test_pragma_suppression_and_hygiene(self):
        result = _lint(
            """
            import os
            def flush(self):
                with self._wal_lock:
                    os.fsync(self.fd)  # lock-ok: close-time durability barrier
            """
        )
        assert not result.findings and not result.errors
        assert len(result.suppressed) == 1

    def test_bare_lock_ok_pragma_is_an_error(self):
        result = _lint(
            """
            import os
            def flush(self):
                with self._wal_lock:
                    os.fsync(self.fd)  # lock-ok
            """
        )
        assert result.findings
        assert any("bare" in e.message for e in result.errors)
