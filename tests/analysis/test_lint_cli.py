"""End-to-end tests for the tools/lint.py CLI gate."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINT = os.path.join(REPO_ROOT, "tools", "lint.py")


def _run(*argv):
    return subprocess.run(
        [sys.executable, LINT, *argv],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_repo_is_lint_clean():
    """The tree must stay at zero findings and zero pragma errors — the
    same invocation the CI static-analysis job runs."""
    result = _run()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "— clean" in result.stdout
    assert "0 finding(s), 0 pragma error(s)" in result.stdout


def test_violation_fails_with_a_located_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        textwrap.dedent(
            """
            import numpy as np
            x = np.zeros(3, dtype=np.float64)
            """
        )
    )
    result = _run(str(bad))
    assert result.returncode == 1
    assert "float64-construction" in result.stdout
    assert "bad.py:3" in result.stdout


def test_bare_pragma_fails_even_with_the_finding_suppressible(tmp_path):
    bad = tmp_path / "bare.py"
    bad.write_text("import numpy as np\nx = np.float64(1)  # dtype-ok\n")
    result = _run(str(bad))
    assert result.returncode == 1
    assert "bare" in result.stdout


def test_json_report_structure(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.float64(1)\n")
    out = tmp_path / "report.json"
    result = _run(str(bad), "--json", str(out))
    assert result.returncode == 1
    report = json.loads(out.read_text())
    assert {"findings", "pragma_errors", "suppressed"} <= set(report)
    (finding,) = report["findings"]
    assert finding["rule"] == "float64-construction"
    assert finding["line"] == 2


def test_verbose_lists_justified_suppressions():
    result = _run("--verbose")
    assert result.returncode == 0
    assert "[suppressed:" in result.stdout
