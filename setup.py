"""Setuptools shim.

The offline environment ships setuptools but not the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This ``setup.py`` lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on fully-provisioned machines) work either way.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
